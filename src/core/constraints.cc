#include "constraints.h"

#include <algorithm>
#include <limits>
#include <map>

#include "util/error.h"

namespace sosim::core {

namespace {

/** RPP ancestor of a rack. */
power::NodeId
rppOf(const power::PowerTree &tree, power::NodeId rack)
{
    return tree.node(rack).parent;
}

/** (node, service) -> instance count for one level of grouping. */
using SpreadCounts = std::map<std::pair<power::NodeId, std::size_t>,
                              std::size_t>;

SpreadCounts
countSpread(const power::PowerTree &tree,
            const power::Assignment &assignment,
            const std::vector<std::size_t> &service_of, bool at_rpp)
{
    SpreadCounts counts;
    for (std::size_t i = 0; i < assignment.size(); ++i) {
        power::NodeId node = assignment[i];
        if (at_rpp)
            node = rppOf(tree, node);
        ++counts[{node, service_of[i]}];
    }
    return counts;
}

} // namespace

std::vector<ConstraintViolation>
findViolations(const power::PowerTree &tree,
               const power::Assignment &assignment,
               const std::vector<std::size_t> &service_of,
               const PlacementConstraints &constraints)
{
    SOSIM_REQUIRE(assignment.size() == service_of.size(),
                  "findViolations: size mismatch");
    std::vector<ConstraintViolation> out;

    if (constraints.maxServiceInstancesPerRack > 0) {
        for (const auto &[key, count] :
             countSpread(tree, assignment, service_of, false)) {
            if (count <= constraints.maxServiceInstancesPerRack)
                continue;
            ConstraintViolation v;
            v.kind = ConstraintViolation::Kind::RackSpread;
            v.subject = key.second;
            v.node = key.first;
            v.count = count;
            v.message = "service " + std::to_string(key.second) +
                        " has " + std::to_string(count) +
                        " instances on rack " + tree.node(key.first).name;
            out.push_back(std::move(v));
        }
    }
    if (constraints.maxServiceInstancesPerRpp > 0) {
        for (const auto &[key, count] :
             countSpread(tree, assignment, service_of, true)) {
            if (count <= constraints.maxServiceInstancesPerRpp)
                continue;
            ConstraintViolation v;
            v.kind = ConstraintViolation::Kind::RppSpread;
            v.subject = key.second;
            v.node = key.first;
            v.count = count;
            v.message = "service " + std::to_string(key.second) +
                        " has " + std::to_string(count) +
                        " instances under RPP " +
                        tree.node(key.first).name;
            out.push_back(std::move(v));
        }
    }
    for (const auto &[inst, rack] : constraints.pinned) {
        SOSIM_REQUIRE(inst < assignment.size(),
                      "findViolations: pinned instance out of range");
        if (assignment[inst] == rack)
            continue;
        ConstraintViolation v;
        v.kind = ConstraintViolation::Kind::Pin;
        v.subject = inst;
        v.node = rack;
        v.count = 0;
        v.message = "instance " + std::to_string(inst) +
                    " is pinned to rack " + tree.node(rack).name +
                    " but placed on " +
                    tree.node(assignment[inst]).name;
        out.push_back(std::move(v));
    }
    return out;
}

std::size_t
enforceConstraints(const power::PowerTree &tree,
                   power::Assignment &assignment,
                   const std::vector<std::size_t> &service_of,
                   const std::vector<trace::TimeSeries> &itraces,
                   const PlacementConstraints &constraints)
{
    SOSIM_REQUIRE(assignment.size() == service_of.size() &&
                      assignment.size() == itraces.size(),
                  "enforceConstraints: size mismatch");
    if (constraints.maxServiceInstancesPerRack > 0 &&
        constraints.maxServiceInstancesPerRpp > 0) {
        SOSIM_REQUIRE(constraints.maxServiceInstancesPerRpp >=
                          constraints.maxServiceInstancesPerRack,
                      "enforceConstraints: per-RPP limit must be >= "
                      "per-rack limit");
    }

    // Feasibility of the spread limits.
    if (constraints.maxServiceInstancesPerRack > 0) {
        std::map<std::size_t, std::size_t> per_service;
        for (const auto s : service_of)
            ++per_service[s];
        for (const auto &[s, count] : per_service) {
            SOSIM_REQUIRE(
                count <= constraints.maxServiceInstancesPerRack *
                             tree.racks().size(),
                "enforceConstraints: per-rack spread limit infeasible "
                "for service " + std::to_string(s));
        }
    }

    std::size_t moves = 0;

    // Pinned sets for quick lookup.
    std::map<std::size_t, power::NodeId> pin_of;
    for (const auto &[inst, rack] : constraints.pinned) {
        SOSIM_REQUIRE(rack < tree.nodeCount() &&
                          tree.node(rack).level == power::Level::Rack,
                      "enforceConstraints: pin target must be a rack");
        const auto [it, inserted] = pin_of.insert({inst, rack});
        SOSIM_REQUIRE(inserted || it->second == rack,
                      "enforceConstraints: conflicting pins for one "
                      "instance");
    }

    // 1. Apply pins, swapping with a non-pinned occupant when possible
    //    to preserve rack occupancy.
    for (const auto &[inst, rack] : pin_of) {
        if (assignment[inst] == rack)
            continue;
        const auto per_rack = tree.instancesPerRack(assignment);
        std::size_t partner = assignment.size();
        for (const auto occupant : per_rack[rack]) {
            if (!pin_of.count(occupant)) {
                partner = occupant;
                break;
            }
        }
        if (partner < assignment.size()) {
            assignment[partner] = assignment[inst];
            ++moves;
        }
        assignment[inst] = rack;
        ++moves;
    }

    if (constraints.maxServiceInstancesPerRack == 0 &&
        constraints.maxServiceInstancesPerRpp == 0) {
        return moves;
    }

    // 2. Spread repair.  Maintain per-rack aggregates for damage-aware
    //    destination choice.
    std::vector<trace::TimeSeries> rack_agg(tree.nodeCount());
    for (const auto rack : tree.racks())
        rack_agg[rack] = trace::TimeSeries::zeros(
            itraces.front().size(), itraces.front().intervalMinutes());
    for (std::size_t i = 0; i < assignment.size(); ++i)
        rack_agg[assignment[i]] += itraces[i];

    auto rack_count = countSpread(tree, assignment, service_of, false);
    auto rpp_count = countSpread(tree, assignment, service_of, true);

    auto rack_ok = [&](power::NodeId rack, std::size_t service) {
        if (constraints.maxServiceInstancesPerRack == 0)
            return true;
        return rack_count[{rack, service}] <
               constraints.maxServiceInstancesPerRack;
    };
    auto rpp_ok = [&](power::NodeId rack, std::size_t service) {
        if (constraints.maxServiceInstancesPerRpp == 0)
            return true;
        return rpp_count[{rppOf(tree, rack), service}] <
               constraints.maxServiceInstancesPerRpp;
    };
    auto move_instance = [&](std::size_t inst, power::NodeId dst) {
        const power::NodeId src = assignment[inst];
        const std::size_t service = service_of[inst];
        assignment[inst] = dst;
        rack_agg[src] -= itraces[inst];
        rack_agg[dst] += itraces[inst];
        --rack_count[{src, service}];
        ++rack_count[{dst, service}];
        --rpp_count[{rppOf(tree, src), service}];
        ++rpp_count[{rppOf(tree, dst), service}];
        ++moves;
    };

    // Iterate until clean; each pass moves every surplus instance of
    // every violated (rack, service) pair to its least-damaging
    // feasible destination.
    for (int pass = 0; pass < 64; ++pass) {
        const auto violations =
            findViolations(tree, assignment, service_of, constraints);
        bool any_spread = false;
        for (const auto &v : violations) {
            if (v.kind == ConstraintViolation::Kind::Pin)
                continue;
            any_spread = true;
            // Instances of the violating service under the node.
            std::vector<std::size_t> members;
            for (std::size_t i = 0; i < assignment.size(); ++i) {
                if (service_of[i] != v.subject || pin_of.count(i))
                    continue;
                const bool under =
                    v.kind == ConstraintViolation::Kind::RackSpread
                        ? assignment[i] == v.node
                        : rppOf(tree, assignment[i]) == v.node;
                if (under)
                    members.push_back(i);
            }
            const std::size_t limit =
                v.kind == ConstraintViolation::Kind::RackSpread
                    ? constraints.maxServiceInstancesPerRack
                    : constraints.maxServiceInstancesPerRpp;
            if (members.size() <= limit)
                continue; // Repaired by an earlier move this pass.

            const std::size_t surplus = members.size() - limit;
            for (std::size_t k = 0; k < surplus; ++k) {
                const std::size_t inst = members[k];
                // Least-damaging feasible destination rack.
                double best_damage =
                    std::numeric_limits<double>::max();
                power::NodeId best_rack = power::kNoNode;
                for (const auto rack : tree.racks()) {
                    if (rack == assignment[inst])
                        continue;
                    if (v.kind ==
                            ConstraintViolation::Kind::RppSpread &&
                        rppOf(tree, rack) == v.node) {
                        continue;
                    }
                    if (!rack_ok(rack, v.subject) ||
                        !rpp_ok(rack, v.subject)) {
                        continue;
                    }
                    const double damage =
                        (rack_agg[rack] + itraces[inst]).peak() -
                        rack_agg[rack].peak();
                    if (damage < best_damage) {
                        best_damage = damage;
                        best_rack = rack;
                    }
                }
                SOSIM_REQUIRE(best_rack != power::kNoNode,
                              "enforceConstraints: no feasible "
                              "destination (limits too tight)");
                move_instance(inst, best_rack);
            }
        }
        if (!any_spread)
            break;
    }

    SOSIM_ASSERT(
        [&] {
            for (const auto &v : findViolations(tree, assignment,
                                                service_of, constraints))
                if (v.kind != ConstraintViolation::Kind::Pin)
                    return false;
            return true;
        }(),
        "enforceConstraints: repair failed to converge");
    return moves;
}

} // namespace sosim::core
