#ifndef SOSIM_CORE_MONITOR_H
#define SOSIM_CORE_MONITOR_H

/**
 * @file
 * Continuous fragmentation monitoring (section 3.6, operationalized).
 *
 * "Our framework continuously records the I-traces and the S-traces, and
 * dynamically re-evaluates the severity of the fragmentation problem by
 * monitoring the sum of peaks of power traces at each level of power
 * infrastructure."
 *
 * The monitor ingests one week of I-traces at a time, tracks the
 * per-level sum of peaks of the current placement against the best
 * placement seen, and recommends an action: nothing, incremental
 * remapping, or a full re-placement.
 */

#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cluster/shape_index.h"
#include "graph/graph.h"
#include "power/power_tree.h"
#include "trace/repair.h"
#include "trace/time_series.h"

namespace sosim::core {

/** What the monitor recommends after an observation. */
enum class MonitorAction {
    /** Placement quality is within tolerance of its baseline. */
    None,
    /** Mild degradation: run the swap-based Remapper. */
    Remap,
    /** Severe degradation: derive a fresh placement. */
    Replace,
};

/** Printable action name. */
std::string monitorActionName(MonitorAction action);

/** One week's evaluation record. */
struct MonitorObservation {
    /** Week index (0-based ingestion order). */
    std::size_t week = 0;
    /** Sum of per-node peaks at the watched level. */
    double sumOfPeaks = 0.0;
    /** Placement-invariant reference: the root (DC) peak. */
    double rootPeak = 0.0;
    /**
     * Fragmentation ratio: sumOfPeaks / rootPeak.  Normalizing by the
     * root peak cancels overall traffic growth, isolating placement
     * quality drift from load drift.
     */
    double fragmentationRatio = 0.0;
    MonitorAction action = MonitorAction::None;
    /**
     * Wall-clock seconds observeWeek() spent evaluating this week
     * (aggregation + peak scans).  Also recorded into the
     * "monitor.observe_seconds" histogram.
     */
    double evalSeconds = 0.0;
    /**
     * True when this week's telemetry contained missing samples and the
     * ratio was computed from repaired data.  Degraded observations are
     * flagged, judged against conservatively widened thresholds, and
     * kept out of the baseline window (see MonitorConfig).
     */
    bool degradedData = false;
    /** Mean valid fraction of this week's I-traces before repair. */
    double validFraction = 1.0;
    /** Samples filled in by the repair policy for this evaluation. */
    std::size_t repairedSamples = 0;
    /** Instances below minValidFraction, excluded from aggregation. */
    std::size_t excludedInstances = 0;
    /**
     * Workload-drift diagnostic: mean distance between this week's
     * shape embeddings and the training population's (see
     * cluster::ShapeIndex::meanDriftFrom).  0.0 when no training index
     * was supplied to measureWeek.  Purely informational — it never
     * influences the recommended action.
     */
    double shapeDrift = 0.0;
};

/** Monitor configuration. */
struct MonitorConfig {
    /** Level whose sum of peaks is watched (leaf-most reported level). */
    power::Level level = power::Level::Rpp;
    /** Weeks kept in the sliding baseline window. */
    std::size_t baselineWindowWeeks = 4;
    /** Relative ratio degradation that triggers a remap. */
    double remapThreshold = 0.02;
    /** Relative ratio degradation that triggers a full re-place. */
    double replaceThreshold = 0.08;
    /**
     * Gap-repair policy applied (to an internal copy) when a week's
     * telemetry contains NaN samples; the caller's traces are never
     * mutated.
     */
    trace::RepairPolicy repairPolicy = trace::RepairPolicy::Interpolate;
    /**
     * Instances whose week is less valid than this fraction are dropped
     * from the aggregation entirely — mostly-fabricated traces should
     * not steer remap/replace decisions.
     */
    double minValidFraction = 0.5;
    /**
     * Threshold widening factor applied while data is degraded: both
     * action thresholds are multiplied by this, so noisy weeks must
     * show proportionally more degradation before the monitor recommends
     * churn.  This is the conservative-headroom rule: acting on repaired
     * data risks remapping against sensor artifacts, so the monitor
     * demands a wider margin before it acts.  Degraded ratios are also
     * kept out of the baseline window so they cannot lower the baseline
     * that future healthy weeks are judged against.
     */
    double degradedThresholdFactor = 2.0;
};

/**
 * The pure, data-derived half of one week's evaluation: everything
 * measureWeek can compute from (tree, config, traces, assignment) alone,
 * before the stateful baseline/threshold judgment of
 * FragmentationMonitor::ingest.  This is the output of the pipeline's
 * MonitorOp.
 */
struct MonitorMeasurement {
    /** Sum of per-node peaks at the watched level. */
    double sumOfPeaks = 0.0;
    /** Placement-invariant reference: the root (DC) peak. */
    double rootPeak = 0.0;
    /** sumOfPeaks / rootPeak. */
    double fragmentationRatio = 0.0;
    /** True when the week's telemetry contained missing samples. */
    bool degradedData = false;
    /** Mean valid fraction of the week's I-traces before repair. */
    double validFraction = 1.0;
    /** Samples filled in by the repair policy. */
    std::size_t repairedSamples = 0;
    /** Instances below minValidFraction, excluded from aggregation. */
    std::size_t excludedInstances = 0;
    /**
     * Mean shape drift of the week against the training index handed to
     * measureWeek; 0.0 when none was supplied.  Diagnostic only.
     */
    double shapeDrift = 0.0;
};

/**
 * Evaluate one week of I-traces against a placement: validity sweep,
 * gap repair into an internal arena copy (the caller's traces are never
 * mutated), aggregation, and the sum-of-peaks / root-peak ratio.  Pure
 * function of its arguments — the body of the pipeline's MonitorOp and
 * of FragmentationMonitor::observeWeek's graph node.  Only the level /
 * repairPolicy / minValidFraction fields of the config are read (see
 * core::fingerprintMonitorMeasureConfig).
 *
 * When `training` is supplied (the shared ShapeIndex built over the
 * training population — the same index placement and remap pruning
 * consume), the measurement also reports the week's mean shape drift
 * from it (MonitorMeasurement::shapeDrift); degraded weeks embed their
 * repaired copy so sensor gaps do not masquerade as workload drift.
 * The drift is a diagnostic and never changes the computed ratio.
 */
MonitorMeasurement
measureWeek(const power::PowerTree &tree, const MonitorConfig &config,
            const std::vector<trace::TimeSeries> &itraces,
            const power::Assignment &assignment,
            const cluster::ShapeIndex *training = nullptr);

/**
 * Tracks placement quality over successive weeks of telemetry.
 */
class FragmentationMonitor
{
  public:
    /**
     * @param tree   Power infrastructure (not owned).
     * @param config Thresholds and window length.
     */
    FragmentationMonitor(const power::PowerTree &tree,
                         MonitorConfig config = {});

    /**
     * Ingest one week of I-traces for the current placement and obtain
     * a recommendation.
     *
     * The baseline is the minimum fragmentation ratio over the sliding
     * window; an observation whose ratio exceeds the baseline by the
     * configured thresholds triggers Remap / Replace.
     *
     * Degraded telemetry (NaN samples) is handled gracefully: the week
     * is repaired into an internal copy under config().repairPolicy,
     * instances below minValidFraction are excluded, the observation is
     * flagged degradedData, and the action thresholds are widened by
     * degradedThresholdFactor so the monitor does not recommend churn
     * based on fabricated samples.
     *
     * @param itraces    This week's I-trace of every instance.
     * @param assignment The placement currently deployed.
     */
    MonitorObservation
    observeWeek(const std::vector<trace::TimeSeries> &itraces,
                const power::Assignment &assignment);

    /**
     * Judge a measurement against the baseline window and record it:
     * threshold widening for degraded data, action selection, window
     * update, counters, history.  This is the stateful half of
     * observeWeek; pipeline drivers that computed their measurements
     * through a graph (core::measureWeek via MonitorOp) feed them in
     * here, in week order.
     *
     * @param m            The week's measurement.
     * @param eval_seconds Wall-clock seconds spent producing `m`
     *                     (recorded in the observation and the
     *                     "monitor.observe_seconds" histogram).
     */
    MonitorObservation
    ingest(const MonitorMeasurement &m, double eval_seconds = 0.0);

    /**
     * Tell the monitor the placement was re-derived: the baseline
     * window resets so old ratios do not mask the new placement.
     */
    void placementUpdated();

    /**
     * Serialized judgment state — the sliding baseline window and the
     * week counter — for serve-layer checkpoints (DESIGN.md section
     * 14).  restoreBaselineState() is the exact inverse: a monitor
     * restored from a checkpoint judges subsequent measurements
     * identically to one that ingested the same weeks live.  History
     * is not part of the state; a restored monitor's history restarts
     * empty.
     */
    struct BaselineState {
        std::vector<double> window;
        std::size_t weekCounter = 0;
    };

    BaselineState baselineState() const;
    void restoreBaselineState(const BaselineState &state);

    /** All observations so far, oldest first. */
    const std::vector<MonitorObservation> &history() const
    {
        return history_;
    }

    const MonitorConfig &config() const { return config_; }

  private:
    const power::PowerTree &tree_;
    MonitorConfig config_;
    std::deque<double> window_;
    std::vector<MonitorObservation> history_;
    std::size_t weekCounter_ = 0;
    /**
     * Lazily-built member graph behind observeWeek: inputs (itraces,
     * assignment) with content fingerprints feeding one measure node, so
     * re-observing an identical week is a cache hit.  Input values hold
     * non-owning pointers into the caller's buffers; they are only
     * dereferenced during eval, inside the observeWeek call.
     */
    std::unique_ptr<graph::OpGraph> graph_;
    graph::Handle tracesIn_;
    graph::Handle assignmentIn_;
    graph::Handle measureOp_;
};

} // namespace sosim::core

#endif // SOSIM_CORE_MONITOR_H
