#ifndef SOSIM_CORE_SERVICE_TRACES_H
#define SOSIM_CORE_SERVICE_TRACES_H

/**
 * @file
 * Service power trace (S-trace) extraction, section 3.3 of the paper.
 *
 * The S-trace of service Y is the mean of the averaged I-traces of Y's
 * instances (Eq. 5).  SmoothOperator extracts S-traces for the top
 * power-consuming services and uses them as the basis against which every
 * instance's asynchrony-score vector is computed.
 */

#include <cstddef>
#include <vector>

#include "trace/time_series.h"

namespace sosim::core {

/** S-traces of the top power-consumer services. */
struct ServiceTraceSet {
    /** One S-trace per selected service, ordered by descending power. */
    std::vector<trace::TimeSeries> straces;
    /** The service id behind each S-trace (same order). */
    std::vector<std::size_t> serviceIds;
};

/**
 * Build the S-trace of one service: the mean of its instances' averaged
 * I-traces (Eq. 5).
 *
 * @param itraces    Averaged I-traces of all instances.
 * @param members    Indices of the service's instances (non-empty).
 */
trace::TimeSeries serviceTrace(const std::vector<trace::TimeSeries> &itraces,
                               const std::vector<std::size_t> &members);

/**
 * Extract S-traces for the top-m power-consumer services.
 *
 * Services are ranked by their aggregate average power (instance count
 * times mean of the S-trace), matching the paper's "top power-consumer
 * services" selection.
 *
 * @param itraces    Averaged I-trace of each instance.
 * @param service_of Service id of each instance (parallel to itraces).
 * @param top_m      Number of services to keep; clamped to the number of
 *                   distinct services present.
 */
ServiceTraceSet
extractServiceTraces(const std::vector<trace::TimeSeries> &itraces,
                     const std::vector<std::size_t> &service_of,
                     std::size_t top_m);

} // namespace sosim::core

#endif // SOSIM_CORE_SERVICE_TRACES_H
