#ifndef SOSIM_CORE_FINGERPRINTS_H
#define SOSIM_CORE_FINGERPRINTS_H

/**
 * @file
 * Content fingerprints of the domain types that flow along op-graph
 * edges: trace populations, assignments, trees and the config structs.
 *
 * A fingerprint is the caching identity of a graph::Value — two inputs
 * with equal fingerprints are interchangeable to the op graph — so every
 * helper here hashes exactly the fields an op can observe and nothing
 * else.  Config fingerprints are deliberately *partial* where the
 * pipeline splits one struct across ops: fingerprintEmbedConfig covers
 * the fields the embedding reads (topServices, scoring, kernels) while
 * fingerprintDistributeConfig covers the recursive-distribution fields,
 * so a what-if that only changes the clustering seed leaves the embed
 * node's signature — and its cached output — intact.
 *
 * All helpers are pure, deterministic and platform-independent for a
 * fixed input (word-wise FNV-1a over integer bit patterns; doubles are
 * hashed by their IEEE-754 bits, which the determinism contract already
 * fixes per seed).
 */

#include <cstdint>
#include <cstring>

#include "core/monitor.h"
#include "core/placement.h"
#include "core/remap.h"
#include "graph/graph.h"
#include "power/power_tree.h"
#include "trace/time_series.h"

namespace sosim::core {

/** Fingerprint of one series (interval + every sample's bits). */
inline std::uint64_t
fingerprintTrace(const trace::TimeSeries &ts,
                 std::uint64_t seed = graph::kFnvOffset)
{
    std::uint64_t h = graph::hashCombine(
        seed, static_cast<std::uint64_t>(ts.intervalMinutes()));
    return graph::fingerprintDoubles(ts.samples().data(), ts.size(), h);
}

/** Fingerprint of a whole trace population, order-sensitive. */
inline std::uint64_t
fingerprintTraces(const std::vector<trace::TimeSeries> &traces)
{
    std::uint64_t h = graph::hashCombine(graph::kFnvOffset,
                                         traces.size());
    for (const auto &ts : traces)
        h = fingerprintTrace(ts, h);
    return h;
}

/** Fingerprint of a rack assignment. */
inline std::uint64_t
fingerprintAssignment(const power::Assignment &assignment)
{
    std::uint64_t h = graph::hashCombine(graph::kFnvOffset,
                                         assignment.size());
    for (const auto rack : assignment)
        h = graph::hashCombine(h, static_cast<std::uint64_t>(rack));
    return h;
}

/** Fingerprint of a service-id vector. */
inline std::uint64_t
fingerprintServices(const std::vector<std::size_t> &service_of)
{
    std::uint64_t h = graph::hashCombine(graph::kFnvOffset,
                                         service_of.size());
    for (const auto s : service_of)
        h = graph::hashCombine(h, static_cast<std::uint64_t>(s));
    return h;
}

/** The PlacementConfig fields the embedding stage observes. */
inline std::uint64_t
fingerprintEmbedConfig(const PlacementConfig &c)
{
    std::uint64_t h = graph::fingerprintString("embed-config");
    h = graph::hashCombine(h, c.topServices);
    h = graph::hashCombine(h, static_cast<std::uint64_t>(c.scoring));
    h = graph::hashCombine(h, static_cast<std::uint64_t>(c.kernels));
    h = graph::hashCombine(h, static_cast<std::uint64_t>(c.embedding));
    return h;
}

/** The PlacementConfig fields the recursive distribution observes. */
inline std::uint64_t
fingerprintDistributeConfig(const PlacementConfig &c)
{
    std::uint64_t h = graph::fingerprintString("distribute-config");
    h = graph::hashCombine(h, c.clustersPerChild);
    h = graph::hashCombine(h, c.balanceClusters ? 1u : 0u);
    h = graph::hashCombine(h, static_cast<std::uint64_t>(c.kmeansRestarts));
    h = graph::hashCombine(
        h, static_cast<std::uint64_t>(c.kmeansMaxIterations));
    h = graph::hashCombine(h, c.seed);
    return h;
}

/**
 * Deliberately excludes RemapConfig::shards and shardLevel: the shard
 * plan only shapes the fan-out of the swap scan, never its result (the
 * sharded reduction reproduces the unsharded visit order exactly — see
 * trace/shard.h), so a what-if that merely re-shards reuses the cached
 * refinement.  The prune knobs *do* change the searched pair space and
 * are all hashed.
 */
inline std::uint64_t
fingerprintRemapConfig(const RemapConfig &c)
{
    std::uint64_t h = graph::fingerprintString("remap-config");
    h = graph::hashCombine(h, static_cast<std::uint64_t>(c.maxSwaps));
    h = graph::hashCombine(h, c.candidatesPerRound);
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(c.minValidFraction));
    std::memcpy(&bits, &c.minValidFraction, sizeof(bits));
    h = graph::hashCombine(h, bits);
    h = graph::hashCombine(h, static_cast<std::uint64_t>(c.kernels));
    h = graph::hashCombine(h, static_cast<std::uint64_t>(c.prune));
    h = graph::hashCombine(h, c.pruneClusters);
    std::memcpy(&bits, &c.pruneKeepFraction, sizeof(bits));
    h = graph::hashCombine(h, bits);
    h = graph::hashCombine(h, c.pruneSeed);
    return h;
}

/** The MonitorConfig fields measureWeek observes (not the thresholds:
 *  those act in FragmentationMonitor::ingest, outside the graph, so a
 *  threshold-only what-if re-uses every cached measurement). */
inline std::uint64_t
fingerprintMonitorMeasureConfig(const MonitorConfig &c)
{
    std::uint64_t h = graph::fingerprintString("monitor-measure-config");
    h = graph::hashCombine(h, static_cast<std::uint64_t>(c.level));
    h = graph::hashCombine(h, static_cast<std::uint64_t>(c.repairPolicy));
    std::uint64_t bits;
    std::memcpy(&bits, &c.minValidFraction, sizeof(bits));
    h = graph::hashCombine(h, bits);
    return h;
}

/** Fingerprint of a power tree: topology plus every node's budget. */
inline std::uint64_t
fingerprintTree(const power::PowerTree &tree)
{
    std::uint64_t h = graph::hashCombine(graph::kFnvOffset,
                                         tree.nodeCount());
    for (power::NodeId id = 0; id < tree.nodeCount(); ++id) {
        const auto &n = tree.node(id);
        h = graph::hashCombine(h, static_cast<std::uint64_t>(n.parent));
        h = graph::hashCombine(h, static_cast<std::uint64_t>(n.level));
        std::uint64_t bits;
        const double budget = n.budgetWatts;
        std::memcpy(&bits, &budget, sizeof(bits));
        h = graph::hashCombine(h, bits);
    }
    return h;
}

} // namespace sosim::core

#endif // SOSIM_CORE_FINGERPRINTS_H
