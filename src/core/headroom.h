#ifndef SOSIM_CORE_HEADROOM_H
#define SOSIM_CORE_HEADROOM_H

/**
 * @file
 * Headroom accounting: converting the peak-power reductions achieved by
 * workload-aware placement into the number of extra servers the same
 * power infrastructure can host (section 5.2.1: RPP-level peak reduction
 * "directly translates to the percentage of extra servers").
 */

#include <vector>

#include "power/level.h"
#include "power/power_tree.h"
#include "trace/time_series.h"

namespace sosim::core {

/** Per-level comparison of two placements over one power tree. */
struct LevelComparison {
    power::Level level = power::Level::Rpp;
    /** Sum of per-node peaks under the baseline placement. */
    double baselineSumPeaks = 0.0;
    /** Sum of per-node peaks under the optimized placement. */
    double optimizedSumPeaks = 0.0;
    /** 1 - optimized/baseline. */
    double peakReductionFraction = 0.0;
};

/** Result of comparing a baseline and an optimized placement. */
struct HeadroomReport {
    /** One entry per tree level, root first. */
    std::vector<LevelComparison> levels;

    /** Comparison at a specific level (must exist). */
    const LevelComparison &at(power::Level level) const;

    /**
     * Fraction of extra servers the optimized placement can host at the
     * given level under the baseline's peak-provisioned budgets:
     * baseline_sum_peaks / optimized_sum_peaks - 1.  The paper quotes
     * this at the RPP level ("up to 13% more machines").
     */
    double extraServerFraction(power::Level level = power::Level::Rpp) const;
};

/**
 * Compare two placements of the same instances on the same tree.
 *
 * @param tree      Power infrastructure.
 * @param itraces   Evaluation traces of every instance (the paper uses
 *                  the held-out test week here).
 * @param baseline  Baseline (e.g. oblivious) placement.
 * @param optimized Workload-aware placement.
 */
HeadroomReport
comparePlacements(const power::PowerTree &tree,
                  const std::vector<trace::TimeSeries> &itraces,
                  const power::Assignment &baseline,
                  const power::Assignment &optimized);

} // namespace sosim::core

#endif // SOSIM_CORE_HEADROOM_H
