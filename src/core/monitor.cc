#include "monitor.h"

#include <algorithm>
#include <chrono>

#include "core/fingerprints.h"
#include "obs/obs.h"
#include "trace/arena.h"
#include "util/error.h"

namespace sosim::core {

std::string
monitorActionName(MonitorAction action)
{
    switch (action) {
      case MonitorAction::None:
        return "none";
      case MonitorAction::Remap:
        return "remap";
      case MonitorAction::Replace:
        return "replace";
    }
    return "?";
}

FragmentationMonitor::FragmentationMonitor(const power::PowerTree &tree,
                                           MonitorConfig config)
    : tree_(tree), config_(config)
{
    SOSIM_REQUIRE(config.baselineWindowWeeks >= 1,
                  "FragmentationMonitor: window must be >= 1 week");
    SOSIM_REQUIRE(config.remapThreshold >= 0.0 &&
                      config.replaceThreshold >= config.remapThreshold,
                  "FragmentationMonitor: thresholds must satisfy "
                  "0 <= remap <= replace");
    SOSIM_REQUIRE(config.level != power::Level::Datacenter,
                  "FragmentationMonitor: the DC level is placement-"
                  "invariant; watch a lower level");
    SOSIM_REQUIRE(config.minValidFraction >= 0.0 &&
                      config.minValidFraction <= 1.0,
                  "FragmentationMonitor: minValidFraction must be in "
                  "[0, 1]");
    SOSIM_REQUIRE(config.degradedThresholdFactor >= 1.0,
                  "FragmentationMonitor: degradedThresholdFactor must "
                  "be >= 1");
}

MonitorMeasurement
measureWeek(const power::PowerTree &tree, const MonitorConfig &config,
            const std::vector<trace::TimeSeries> &itraces,
            const power::Assignment &assignment,
            const cluster::ShapeIndex *training)
{
    MonitorMeasurement m;

    // Shape-drift diagnostic against the shared training index: embeds
    // the week the same way the index embedded the training population.
    // Degraded weeks embed their repaired rows (filled below), so the
    // drift reflects workload change, not sensor gaps.
    const bool want_drift = training != nullptr && !training->empty();
    const auto driftOf = [&](const std::vector<const double *> &rows,
                             std::size_t samples) {
        return cluster::ShapeIndex::build(rows, samples,
                                          training->buckets())
            .meanDriftFrom(*training);
    };

    // Validity sweep: one pass per trace.  Fully valid weeks take the
    // zero-copy path below; anything with gaps is repaired into a copy.
    double valid_sum = 0.0;
    bool any_gap = false;
    std::vector<double> validity(itraces.size(), 1.0);
    for (std::size_t i = 0; i < itraces.size(); ++i) {
        validity[i] = trace::validFraction(itraces[i]);
        valid_sum += validity[i];
        any_gap = any_gap || validity[i] < 1.0;
    }
    m.validFraction = itraces.empty()
                          ? 1.0
                          : valid_sum /
                                static_cast<double>(itraces.size());

    std::vector<trace::TimeSeries> node_traces;
    if (any_gap) {
        m.degradedData = true;
        // Repair into an arena copy of the week (the caller's traces are
        // never mutated): one contiguous allocation instead of a cloned
        // vector of series, and the aggregation reads the rows directly.
        trace::TraceArena repaired =
            trace::TraceArena::fromSeries(itraces);
        for (std::size_t i = 0; i < repaired.size(); ++i) {
            if (validity[i] >= 1.0)
                continue;
            double *row = repaired.mutableRow(i);
            if (validity[i] < config.minValidFraction) {
                // Mostly fabricated: contribute nothing rather than a
                // guess (the zeros keep aggregateTraces' shape intact).
                std::fill(row, row + repaired.samplesPerTrace(), 0.0);
                ++m.excludedInstances;
                SOSIM_EVENT(.kind = obs::EventKind::MonitorExclude,
                            .a = i, .x = validity[i]);
                continue;
            }
            const auto r =
                trace::repairSpan(row, repaired.samplesPerTrace(),
                                  config.repairPolicy);
            m.repairedSamples += r.samplesRepaired;
            if (r.samplesRepaired > 0)
                SOSIM_EVENT(.kind = obs::EventKind::FaultRepair,
                            .a = i, .b = r.samplesRepaired);
        }
        if (want_drift) {
            std::vector<const double *> rows(repaired.size());
            for (trace::TraceId id = 0; id < repaired.size(); ++id)
                rows[id] = repaired.row(id);
            m.shapeDrift = driftOf(rows, repaired.samplesPerTrace());
        }
        std::vector<trace::TraceView> views;
        views.reserve(repaired.size());
        for (trace::TraceId id = 0; id < repaired.size(); ++id)
            views.push_back(repaired.view(id));
        node_traces = tree.aggregateTraces(views, assignment);
    } else {
        if (want_drift && !itraces.empty()) {
            std::vector<const double *> rows(itraces.size());
            for (std::size_t i = 0; i < itraces.size(); ++i)
                rows[i] = itraces[i].samples().data();
            m.shapeDrift =
                driftOf(rows, itraces.front().samples().size());
        }
        node_traces = tree.aggregateTraces(itraces, assignment);
    }
    m.sumOfPeaks = tree.sumOfPeaks(node_traces, config.level);
    m.rootPeak = node_traces[tree.root()].peak();
    SOSIM_ASSERT(m.rootPeak > 0.0,
                 "FragmentationMonitor: zero root peak");
    m.fragmentationRatio = m.sumOfPeaks / m.rootPeak;
    return m;
}

MonitorObservation
FragmentationMonitor::observeWeek(
    const std::vector<trace::TimeSeries> &itraces,
    const power::Assignment &assignment)
{
    SOSIM_SPAN("monitor.observe_week");
    const auto t0 = std::chrono::steady_clock::now();

    // The measurement runs as a one-node member graph keyed by content
    // fingerprints: re-observing an identical (week, assignment) pair —
    // e.g. a what-if re-run with different thresholds, which live in
    // ingest(), not here — is a cache hit that skips the aggregation.
    if (!graph_) {
        graph_ = std::make_unique<graph::OpGraph>();
        tracesIn_ = graph_->input(
            "itraces", graph::Value::of(&itraces,
                                        fingerprintTraces(itraces)));
        assignmentIn_ = graph_->input(
            "assignment",
            graph::Value::of(&assignment,
                             fingerprintAssignment(assignment)));
        measureOp_ = graph_->op(
            "monitor.measure", {tracesIn_, assignmentIn_},
            fingerprintMonitorMeasureConfig(config_),
            [this](const std::vector<graph::Value> &ins) {
                const auto &traces = *ins[0].as<
                    const std::vector<trace::TimeSeries> *>();
                const auto &assign =
                    *ins[1].as<const power::Assignment *>();
                return graph::Value::ofNonce(
                    measureWeek(tree_, config_, traces, assign));
            });
    } else {
        graph_->setInput(tracesIn_,
                         graph::Value::of(&itraces,
                                          fingerprintTraces(itraces)));
        graph_->setInput(
            assignmentIn_,
            graph::Value::of(&assignment,
                             fingerprintAssignment(assignment)));
    }
    const auto m =
        graph_->eval(measureOp_).as<MonitorMeasurement>();

    const double eval_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return ingest(m, eval_seconds);
}

MonitorObservation
FragmentationMonitor::ingest(const MonitorMeasurement &m,
                             double eval_seconds)
{
    MonitorObservation obs;
    obs.week = weekCounter_++;
    obs.sumOfPeaks = m.sumOfPeaks;
    obs.rootPeak = m.rootPeak;
    obs.fragmentationRatio = m.fragmentationRatio;
    obs.degradedData = m.degradedData;
    obs.validFraction = m.validFraction;
    obs.repairedSamples = m.repairedSamples;
    obs.excludedInstances = m.excludedInstances;
    obs.shapeDrift = m.shapeDrift;

    // Degraded weeks face widened thresholds: repaired samples can
    // fabricate fragmentation, so demand a proportionally larger margin
    // before recommending churn.
    const double widen =
        obs.degradedData ? config_.degradedThresholdFactor : 1.0;
    if (window_.empty()) {
        obs.action = MonitorAction::None;
    } else {
        const double baseline =
            *std::min_element(window_.begin(), window_.end());
        const double degradation =
            obs.fragmentationRatio / baseline - 1.0;
        if (degradation >= config_.replaceThreshold * widen)
            obs.action = MonitorAction::Replace;
        else if (degradation >= config_.remapThreshold * widen)
            obs.action = MonitorAction::Remap;
        else
            obs.action = MonitorAction::None;
    }

    // Only healthy ratios feed the baseline window: a ratio computed
    // from fabricated samples must not become the bar that future
    // healthy weeks are judged against.
    if (!obs.degradedData) {
        window_.push_back(obs.fragmentationRatio);
        while (window_.size() > config_.baselineWindowWeeks)
            window_.pop_front();
    }

    obs.evalSeconds = eval_seconds;
    SOSIM_COUNT("monitor.observations");
#if SOSIM_OBS_ENABLED
    // Dynamic name — the macro's static-reference cache would pin the
    // first action seen, so go through the registry directly.
    sosim::obs::registry()
        .counter("monitor.action." + monitorActionName(obs.action))
        .inc();
#endif
    if (obs.degradedData) {
        SOSIM_COUNT("monitor.degraded_observations");
        SOSIM_COUNT_ADD("monitor.repaired_samples", obs.repairedSamples);
        SOSIM_COUNT_ADD("monitor.excluded_instances",
                        obs.excludedInstances);
    }
    SOSIM_GAUGE_SET("monitor.valid_fraction", obs.validFraction);
    SOSIM_GAUGE_SET("monitor.sum_of_peaks", obs.sumOfPeaks);
    SOSIM_GAUGE_SET("monitor.root_peak", obs.rootPeak);
    SOSIM_GAUGE_SET("monitor.fragmentation_ratio", obs.fragmentationRatio);
    SOSIM_GAUGE_SET("monitor.shape_drift", obs.shapeDrift);
    SOSIM_OBSERVE("monitor.observe_seconds", obs.evalSeconds);
    // Fully qualified: the local `obs` observation shadows the
    // namespace here.
    SOSIM_EVENT(.kind = ::sosim::obs::EventKind::MonitorWeek,
                .code = obs.degradedData ? 1U : 0U,
                .label = monitorActionName(obs.action), .a = obs.week,
                .b = static_cast<std::uint64_t>(obs.action),
                .c = obs.excludedInstances, .d = obs.repairedSamples,
                .x = obs.fragmentationRatio, .y = obs.validFraction,
                .z = widen);

    history_.push_back(obs);
    return obs;
}

void
FragmentationMonitor::placementUpdated()
{
    window_.clear();
}

FragmentationMonitor::BaselineState
FragmentationMonitor::baselineState() const
{
    BaselineState state;
    state.window.assign(window_.begin(), window_.end());
    state.weekCounter = weekCounter_;
    return state;
}

void
FragmentationMonitor::restoreBaselineState(const BaselineState &state)
{
    window_.assign(state.window.begin(), state.window.end());
    weekCounter_ = state.weekCounter;
}

} // namespace sosim::core
