#include "monitor.h"

#include <algorithm>
#include <chrono>

#include "obs/obs.h"
#include "trace/arena.h"
#include "util/error.h"

namespace sosim::core {

std::string
monitorActionName(MonitorAction action)
{
    switch (action) {
      case MonitorAction::None:
        return "none";
      case MonitorAction::Remap:
        return "remap";
      case MonitorAction::Replace:
        return "replace";
    }
    return "?";
}

FragmentationMonitor::FragmentationMonitor(const power::PowerTree &tree,
                                           MonitorConfig config)
    : tree_(tree), config_(config)
{
    SOSIM_REQUIRE(config.baselineWindowWeeks >= 1,
                  "FragmentationMonitor: window must be >= 1 week");
    SOSIM_REQUIRE(config.remapThreshold >= 0.0 &&
                      config.replaceThreshold >= config.remapThreshold,
                  "FragmentationMonitor: thresholds must satisfy "
                  "0 <= remap <= replace");
    SOSIM_REQUIRE(config.level != power::Level::Datacenter,
                  "FragmentationMonitor: the DC level is placement-"
                  "invariant; watch a lower level");
    SOSIM_REQUIRE(config.minValidFraction >= 0.0 &&
                      config.minValidFraction <= 1.0,
                  "FragmentationMonitor: minValidFraction must be in "
                  "[0, 1]");
    SOSIM_REQUIRE(config.degradedThresholdFactor >= 1.0,
                  "FragmentationMonitor: degradedThresholdFactor must "
                  "be >= 1");
}

MonitorObservation
FragmentationMonitor::observeWeek(
    const std::vector<trace::TimeSeries> &itraces,
    const power::Assignment &assignment)
{
    SOSIM_SPAN("monitor.observe_week");
    const auto t0 = std::chrono::steady_clock::now();

    MonitorObservation obs;
    obs.week = weekCounter_++;

    // Validity sweep: one pass per trace.  Fully valid weeks take the
    // zero-copy path below; anything with gaps is repaired into a copy.
    double valid_sum = 0.0;
    bool any_gap = false;
    std::vector<double> validity(itraces.size(), 1.0);
    for (std::size_t i = 0; i < itraces.size(); ++i) {
        validity[i] = trace::validFraction(itraces[i]);
        valid_sum += validity[i];
        any_gap = any_gap || validity[i] < 1.0;
    }
    obs.validFraction = itraces.empty()
                            ? 1.0
                            : valid_sum /
                                  static_cast<double>(itraces.size());

    std::vector<trace::TimeSeries> node_traces;
    if (any_gap) {
        obs.degradedData = true;
        // Repair into an arena copy of the week (the caller's traces are
        // never mutated): one contiguous allocation instead of a cloned
        // vector of series, and the aggregation reads the rows directly.
        trace::TraceArena repaired =
            trace::TraceArena::fromSeries(itraces);
        for (std::size_t i = 0; i < repaired.size(); ++i) {
            if (validity[i] >= 1.0)
                continue;
            double *row = repaired.mutableRow(i);
            if (validity[i] < config_.minValidFraction) {
                // Mostly fabricated: contribute nothing rather than a
                // guess (the zeros keep aggregateTraces' shape intact).
                std::fill(row, row + repaired.samplesPerTrace(), 0.0);
                ++obs.excludedInstances;
                continue;
            }
            const auto r =
                trace::repairSpan(row, repaired.samplesPerTrace(),
                                  config_.repairPolicy);
            obs.repairedSamples += r.samplesRepaired;
        }
        std::vector<trace::TraceView> views;
        views.reserve(repaired.size());
        for (trace::TraceId id = 0; id < repaired.size(); ++id)
            views.push_back(repaired.view(id));
        node_traces = tree_.aggregateTraces(views, assignment);
    } else {
        node_traces = tree_.aggregateTraces(itraces, assignment);
    }
    obs.sumOfPeaks = tree_.sumOfPeaks(node_traces, config_.level);
    obs.rootPeak = node_traces[tree_.root()].peak();
    SOSIM_ASSERT(obs.rootPeak > 0.0,
                 "FragmentationMonitor: zero root peak");
    obs.fragmentationRatio = obs.sumOfPeaks / obs.rootPeak;

    // Degraded weeks face widened thresholds: repaired samples can
    // fabricate fragmentation, so demand a proportionally larger margin
    // before recommending churn.
    const double widen =
        obs.degradedData ? config_.degradedThresholdFactor : 1.0;
    if (window_.empty()) {
        obs.action = MonitorAction::None;
    } else {
        const double baseline =
            *std::min_element(window_.begin(), window_.end());
        const double degradation =
            obs.fragmentationRatio / baseline - 1.0;
        if (degradation >= config_.replaceThreshold * widen)
            obs.action = MonitorAction::Replace;
        else if (degradation >= config_.remapThreshold * widen)
            obs.action = MonitorAction::Remap;
        else
            obs.action = MonitorAction::None;
    }

    // Only healthy ratios feed the baseline window: a ratio computed
    // from fabricated samples must not become the bar that future
    // healthy weeks are judged against.
    if (!obs.degradedData) {
        window_.push_back(obs.fragmentationRatio);
        while (window_.size() > config_.baselineWindowWeeks)
            window_.pop_front();
    }

    obs.evalSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    SOSIM_COUNT("monitor.observations");
#if SOSIM_OBS_ENABLED
    // Dynamic name — the macro's static-reference cache would pin the
    // first action seen, so go through the registry directly.
    sosim::obs::registry()
        .counter("monitor.action." + monitorActionName(obs.action))
        .inc();
#endif
    if (obs.degradedData) {
        SOSIM_COUNT("monitor.degraded_observations");
        SOSIM_COUNT_ADD("monitor.repaired_samples", obs.repairedSamples);
        SOSIM_COUNT_ADD("monitor.excluded_instances",
                        obs.excludedInstances);
    }
    SOSIM_GAUGE_SET("monitor.valid_fraction", obs.validFraction);
    SOSIM_GAUGE_SET("monitor.sum_of_peaks", obs.sumOfPeaks);
    SOSIM_GAUGE_SET("monitor.root_peak", obs.rootPeak);
    SOSIM_GAUGE_SET("monitor.fragmentation_ratio", obs.fragmentationRatio);
    SOSIM_OBSERVE("monitor.observe_seconds", obs.evalSeconds);

    history_.push_back(obs);
    return obs;
}

void
FragmentationMonitor::placementUpdated()
{
    window_.clear();
}

} // namespace sosim::core
