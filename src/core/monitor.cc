#include "monitor.h"

#include <algorithm>
#include <chrono>

#include "obs/obs.h"
#include "util/error.h"

namespace sosim::core {

std::string
monitorActionName(MonitorAction action)
{
    switch (action) {
      case MonitorAction::None:
        return "none";
      case MonitorAction::Remap:
        return "remap";
      case MonitorAction::Replace:
        return "replace";
    }
    return "?";
}

FragmentationMonitor::FragmentationMonitor(const power::PowerTree &tree,
                                           MonitorConfig config)
    : tree_(tree), config_(config)
{
    SOSIM_REQUIRE(config.baselineWindowWeeks >= 1,
                  "FragmentationMonitor: window must be >= 1 week");
    SOSIM_REQUIRE(config.remapThreshold >= 0.0 &&
                      config.replaceThreshold >= config.remapThreshold,
                  "FragmentationMonitor: thresholds must satisfy "
                  "0 <= remap <= replace");
    SOSIM_REQUIRE(config.level != power::Level::Datacenter,
                  "FragmentationMonitor: the DC level is placement-"
                  "invariant; watch a lower level");
}

MonitorObservation
FragmentationMonitor::observeWeek(
    const std::vector<trace::TimeSeries> &itraces,
    const power::Assignment &assignment)
{
    SOSIM_SPAN("monitor.observe_week");
    const auto t0 = std::chrono::steady_clock::now();
    const auto node_traces = tree_.aggregateTraces(itraces, assignment);

    MonitorObservation obs;
    obs.week = weekCounter_++;
    obs.sumOfPeaks = tree_.sumOfPeaks(node_traces, config_.level);
    obs.rootPeak = node_traces[tree_.root()].peak();
    SOSIM_ASSERT(obs.rootPeak > 0.0,
                 "FragmentationMonitor: zero root peak");
    obs.fragmentationRatio = obs.sumOfPeaks / obs.rootPeak;

    if (window_.empty()) {
        obs.action = MonitorAction::None;
    } else {
        const double baseline =
            *std::min_element(window_.begin(), window_.end());
        const double degradation =
            obs.fragmentationRatio / baseline - 1.0;
        if (degradation >= config_.replaceThreshold)
            obs.action = MonitorAction::Replace;
        else if (degradation >= config_.remapThreshold)
            obs.action = MonitorAction::Remap;
        else
            obs.action = MonitorAction::None;
    }

    window_.push_back(obs.fragmentationRatio);
    while (window_.size() > config_.baselineWindowWeeks)
        window_.pop_front();

    obs.evalSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    SOSIM_COUNT("monitor.observations");
#if SOSIM_OBS_ENABLED
    // Dynamic name — the macro's static-reference cache would pin the
    // first action seen, so go through the registry directly.
    sosim::obs::registry()
        .counter("monitor.action." + monitorActionName(obs.action))
        .inc();
#endif
    SOSIM_GAUGE_SET("monitor.sum_of_peaks", obs.sumOfPeaks);
    SOSIM_GAUGE_SET("monitor.root_peak", obs.rootPeak);
    SOSIM_GAUGE_SET("monitor.fragmentation_ratio", obs.fragmentationRatio);
    SOSIM_OBSERVE("monitor.observe_seconds", obs.evalSeconds);

    history_.push_back(obs);
    return obs;
}

void
FragmentationMonitor::placementUpdated()
{
    window_.clear();
}

} // namespace sosim::core
