#include "generator.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"
#include "util/error.h"
#include "util/rng.h"

namespace sosim::workload {

namespace {

/** Wrapped hour distance on the 24h circle. */
double
hourDistance(double a, double b)
{
    double d = std::fmod(std::abs(a - b), 24.0);
    return std::min(d, 24.0 - d);
}

/** Gaussian bump on the 24h circle, peak value 1 at `center`. */
double
dailyBump(double hour, double center, double sigma_hours)
{
    const double d = hourDistance(hour, center);
    return std::exp(-0.5 * (d / sigma_hours) * (d / sigma_hours));
}

/** Day-of-week activity multiplier (Sat=5, Sun=6 of the trace week). */
double
dayOfWeekFactor(const ServiceProfile &profile, int day)
{
    if (day == 5 || day == 6)
        return profile.weekendFactor;
    // Mild weekday undulation (paper: "strong day-of-the-week activity
    // patterns"); deterministic in the day index.
    return 1.0 + profile.dayOfWeekVariation *
                     std::sin(2.0 * M_PI * static_cast<double>(day) / 7.0);
}

/** Raw (pre-clamp) bump component of the activity at an hour of day. */
double
bumpAt(const ServiceProfile &profile, double hour, double phase_hours)
{
    const double h = hour - phase_hours;
    double bump = dailyBump(h, profile.peakHour, profile.peakWidthHours);
    if (profile.secondaryPeakHour >= 0.0) {
        bump += profile.secondaryWeight *
                dailyBump(h, profile.secondaryPeakHour,
                          profile.peakWidthHours);
    }
    return std::min(bump, 1.0);
}

} // namespace

double
activityAt(const ServiceProfile &profile, int minute_of_week,
           double phase_hours)
{
    SOSIM_REQUIRE(minute_of_week >= 0 &&
                      minute_of_week < trace::kMinutesPerWeek,
                  "activityAt: minute out of range");
    const int day = minute_of_week / trace::kMinutesPerDay;
    const double hour =
        static_cast<double>(minute_of_week % trace::kMinutesPerDay) / 60.0;
    const double bump = bumpAt(profile, hour, phase_hours);
    const double dow = dayOfWeekFactor(profile, day);
    const double activity =
        profile.baseActivity +
        (1.0 - profile.baseActivity) * bump * dow;
    return std::clamp(activity, 0.0, 1.0);
}

int
DatacenterSpec::totalInstances() const
{
    int total = 0;
    for (const auto &dep : services)
        total += dep.instanceCount;
    return total;
}

GeneratedDatacenter::GeneratedDatacenter(
    DatacenterSpec spec, std::vector<InstanceInfo> instances,
    std::vector<std::vector<trace::TimeSeries>> service_activity)
    : spec_(std::move(spec)), instances_(std::move(instances)),
      serviceActivity_(std::move(service_activity))
{
}

const InstanceInfo &
GeneratedDatacenter::instance(std::size_t i) const
{
    SOSIM_REQUIRE(i < instances_.size(),
                  "GeneratedDatacenter::instance: index out of range");
    return instances_[i];
}

const ServiceProfile &
GeneratedDatacenter::serviceProfile(std::size_t s) const
{
    SOSIM_REQUIRE(s < spec_.services.size(),
                  "GeneratedDatacenter::serviceProfile: index out of range");
    return spec_.services[s].profile;
}

std::size_t
GeneratedDatacenter::serviceOf(std::size_t i) const
{
    return instance(i).serviceIndex;
}

std::vector<std::size_t>
GeneratedDatacenter::instancesOfService(std::size_t s) const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < instances_.size(); ++i)
        if (instances_[i].serviceIndex == s)
            out.push_back(i);
    return out;
}

std::vector<std::size_t>
GeneratedDatacenter::instancesOfClass(ServiceClass klass) const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < instances_.size(); ++i)
        if (serviceProfile(instances_[i].serviceIndex).klass == klass)
            out.push_back(i);
    return out;
}

std::vector<trace::TimeSeries>
GeneratedDatacenter::trainingTraces() const
{
    const int train_weeks = std::max(1, spec_.weeks - 1);
    std::vector<trace::TimeSeries> out;
    out.reserve(instances_.size());
    for (const auto &inst : instances_) {
        std::vector<trace::TimeSeries> weeks(
            inst.weeklyPower.begin(),
            inst.weeklyPower.begin() + train_weeks);
        out.push_back(trace::averageWeeks(weeks));
    }
    return out;
}

std::vector<trace::TimeSeries>
GeneratedDatacenter::testTraces() const
{
    std::vector<trace::TimeSeries> out;
    out.reserve(instances_.size());
    for (const auto &inst : instances_)
        out.push_back(inst.weeklyPower.back());
    return out;
}

const trace::TimeSeries &
GeneratedDatacenter::weekTrace(std::size_t i, int week) const
{
    const auto &inst = instance(i);
    SOSIM_REQUIRE(week >= 0 &&
                      week < static_cast<int>(inst.weeklyPower.size()),
                  "GeneratedDatacenter::weekTrace: week out of range");
    return inst.weeklyPower[week];
}

const trace::TimeSeries &
GeneratedDatacenter::serviceActivity(std::size_t s, int week) const
{
    SOSIM_REQUIRE(s < serviceActivity_.size(),
                  "serviceActivity: service out of range");
    SOSIM_REQUIRE(week >= 0 &&
                      week < static_cast<int>(serviceActivity_[s].size()),
                  "serviceActivity: week out of range");
    return serviceActivity_[s][week];
}

GeneratedDatacenter
generate(const DatacenterSpec &spec)
{
    SOSIM_SPAN("workload.generate");
    SOSIM_REQUIRE(!spec.services.empty(),
                  "generate: spec must declare at least one service");
    SOSIM_REQUIRE(spec.weeks >= 1, "generate: need at least one week");
    SOSIM_REQUIRE(spec.intervalMinutes >= 1 &&
                      trace::kMinutesPerDay % spec.intervalMinutes == 0,
                  "generate: interval must divide a day evenly");
    const std::size_t samples_per_week = static_cast<std::size_t>(
        trace::kMinutesPerWeek / spec.intervalMinutes);
    const std::size_t samples_per_day = static_cast<std::size_t>(
        trace::kMinutesPerDay / spec.intervalMinutes);

    util::Rng master(spec.seed);

    // Per-service weekly modulation (shared by all instances of the
    // service so that synchronous instances stay synchronous).
    const std::size_t num_services = spec.services.size();
    std::vector<std::vector<double>> week_scale(num_services);
    std::vector<std::vector<double>> week_phase(num_services);
    for (std::size_t s = 0; s < num_services; ++s) {
        util::Rng rng = master.fork();
        week_scale[s].resize(spec.weeks);
        week_phase[s].resize(spec.weeks);
        for (int w = 0; w < spec.weeks; ++w) {
            week_scale[s][w] =
                std::max(0.5, 1.0 + rng.normal(0.0, spec.weekScaleStd)) *
                std::pow(1.0 + spec.weeklyGrowth, w);
            week_phase[s][w] = rng.normal(0.0, spec.weekPhaseStd);
        }
    }

    // Nominal per-service activity curves.
    std::vector<std::vector<trace::TimeSeries>> service_activity(
        num_services);
    for (std::size_t s = 0; s < num_services; ++s) {
        const auto &profile = spec.services[s].profile;
        for (int w = 0; w < spec.weeks; ++w) {
            std::vector<double> act(samples_per_week);
            for (std::size_t t = 0; t < samples_per_week; ++t) {
                const int minute =
                    static_cast<int>(t) * spec.intervalMinutes;
                act[t] = std::clamp(activityAt(profile, minute,
                                               week_phase[s][w]) *
                                        week_scale[s][w],
                                    0.0, 1.0);
            }
            service_activity[s].emplace_back(std::move(act),
                                             spec.intervalMinutes);
        }
    }

    // Instances.
    std::vector<InstanceInfo> instances;
    instances.reserve(static_cast<std::size_t>(spec.totalInstances()));
    for (std::size_t s = 0; s < num_services; ++s) {
        const auto &dep = spec.services[s];
        SOSIM_REQUIRE(dep.instanceCount >= 0,
                      "generate: negative instance count");
        const std::size_t n = static_cast<std::size_t>(dep.instanceCount);
        if (n == 0)
            continue;
        const auto &profile = dep.profile;
        util::Rng service_rng = master.fork();

        // Popularity weights: Zipf over a shuffled rank order, normalized
        // to mean 1 so the service's aggregate power is rank-independent.
        std::vector<double> popularity(n, 1.0);
        if (profile.popularityZipf > 0.0) {
            std::vector<std::size_t> ranks(n);
            for (std::size_t i = 0; i < n; ++i)
                ranks[i] = i;
            service_rng.shuffle(ranks);
            double total = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                popularity[i] = std::pow(
                    static_cast<double>(ranks[i] + 1),
                    -profile.popularityZipf);
                total += popularity[i];
            }
            const double mean = total / static_cast<double>(n);
            for (auto &p : popularity)
                p /= mean;
        }

        for (std::size_t i = 0; i < n; ++i) {
            util::Rng rng = service_rng.fork();
            InstanceInfo info;
            info.serviceIndex = s;
            info.popularity = popularity[i];
            info.amplitude = std::max(
                0.2, 1.0 + rng.normal(0.0, profile.amplitudeJitterFrac));
            info.phaseHours = rng.normal(0.0, profile.phaseJitterHours);

            for (int w = 0; w < spec.weeks; ++w) {
                // Per-instance daily bump table: the bump only depends on
                // the time of day, so evaluate one day and reuse it.
                std::vector<double> bump_table(samples_per_day);
                for (std::size_t t = 0; t < samples_per_day; ++t) {
                    const int minute =
                        static_cast<int>(t) * spec.intervalMinutes;
                    const double hour =
                        static_cast<double>(minute) / 60.0;
                    bump_table[t] =
                        bumpAt(profile, hour,
                               info.phaseHours + week_phase[s][w]);
                }

                // Burst schedule for the week: multiplicative pulses.
                std::vector<double> burst(samples_per_week, 1.0);
                if (profile.burstsPerDay > 0.0) {
                    for (int day = 0; day < 7; ++day) {
                        if (!rng.chance(profile.burstsPerDay))
                            continue;
                        const std::size_t start =
                            static_cast<std::size_t>(day) *
                                samples_per_day +
                            static_cast<std::size_t>(rng.uniformInt(
                                0, (std::int64_t)samples_per_day - 1));
                        const std::size_t len = std::max<std::size_t>(
                            1, static_cast<std::size_t>(
                                   profile.burstMinutes /
                                   spec.intervalMinutes));
                        for (std::size_t t = start;
                             t < std::min(start + len, samples_per_week);
                             ++t) {
                            burst[t] = profile.burstMagnitude;
                        }
                    }
                }

                std::vector<double> samples(samples_per_week);
                const double gain =
                    info.popularity * info.amplitude * week_scale[s][w];
                for (std::size_t t = 0; t < samples_per_week; ++t) {
                    const int day = static_cast<int>(t / samples_per_day);
                    const double activity = std::clamp(
                        (profile.baseActivity +
                         (1.0 - profile.baseActivity) *
                             bump_table[t % samples_per_day] *
                             dayOfWeekFactor(profile, day)) *
                            burst[t] * gain,
                        0.0, 1.2);
                    double p = profile.maxPowerWatts *
                               (profile.idleFraction +
                                (1.0 - profile.idleFraction) * activity);
                    p += rng.normal(0.0, profile.noiseStd);
                    samples[t] = std::clamp(p, 0.0,
                                            profile.maxPowerWatts * 1.1);
                }
                info.weeklyPower.emplace_back(std::move(samples),
                                              spec.intervalMinutes);
            }
            instances.push_back(std::move(info));
        }
    }

    return GeneratedDatacenter(spec, std::move(instances),
                               std::move(service_activity));
}

} // namespace sosim::workload
