#ifndef SOSIM_WORKLOAD_DC_PRESETS_H
#define SOSIM_WORKLOAD_DC_PRESETS_H

/**
 * @file
 * Specifications of the three datacenters under study.
 *
 * The presets reproduce the *qualitative* properties the paper reports:
 *   - DC1: frontend-dominated with many similar day-peaking services, low
 *     instance heterogeneity, and an already-balanced oblivious placement
 *     -> smallest placement gains (paper: 2.3% RPP peak reduction).
 *   - DC2: mixed LC / storage / batch population -> moderate gains
 *     (paper: 7.1%).
 *   - DC3: strongly heterogeneous mix (day-peaking frontend, flat hadoop,
 *     night-peaking db) -> largest gains (paper: 13.1%), but LC-heavy, so
 *     reshaping has the least Batch to throttle (Figure 14).
 *
 * Service power shares approximate the top-10 breakdowns of Figure 5.
 */

#include "workload/generator.h"

namespace sosim::workload {

/** Knobs shared by the three presets. */
struct PresetOptions {
    /** Trace resolution; 5 minutes bounds bench memory (DESIGN.md §6). */
    int intervalMinutes = 5;
    /** Multiplier on every service's instance count. */
    double scale = 1.0;
    /** Weeks of trace (last week is held out for evaluation). */
    int weeks = 3;
    /** Master seed. */
    std::uint64_t seed = 2018;
};

/** DC1: homogeneous, frontend-dominated datacenter. */
DatacenterSpec buildDc1Spec(const PresetOptions &options = {});

/** DC2: mixed web / database / batch datacenter. */
DatacenterSpec buildDc2Spec(const PresetOptions &options = {});

/** DC3: highly heterogeneous, LC-heavy datacenter. */
DatacenterSpec buildDc3Spec(const PresetOptions &options = {});

/** All three presets in order (DC1, DC2, DC3). */
std::vector<DatacenterSpec> buildAllDcSpecs(
    const PresetOptions &options = {});

/**
 * Fleet-scale mixed datacenter sized to exactly `population` instances
 * (~8 per rack), for the remap scaling scenarios (bench_report fleet
 * rows, tests/test_golden.cc's fleet digest).
 *
 * Eight services of population/8 instances each span the catalog's
 * shape space — day-peaking LC, flat batch, night-peaking storage,
 * evening peaks — so the population clusters cleanly and the pruned
 * swap scan has genuine asynchrony to find.  Fleets of 8192 instances
 * and up widen to sixteen services (population/16 each) drawn from the
 * full catalog, for a more realistic shape mix at 10k+ populations;
 * smaller fleets are unchanged.  The topology is derived
 * from the population (16 racks per SB, suites/SBs balanced), so rack
 * count grows with the fleet instead of piling instances onto the
 * bench topology.  `options.scale` is ignored (the population is
 * explicit).
 *
 * @param population Instance count; must be a positive multiple of 256.
 */
DatacenterSpec buildFleetSpec(int population,
                              const PresetOptions &options = {});

} // namespace sosim::workload

#endif // SOSIM_WORKLOAD_DC_PRESETS_H
