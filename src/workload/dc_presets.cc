#include "dc_presets.h"

#include <cmath>

#include "util/error.h"
#include "workload/catalog.h"

namespace sosim::workload {

namespace {

/** Scale an instance count, keeping at least one instance. */
int
scaled(int count, double scale)
{
    return std::max(1, static_cast<int>(std::lround(count * scale)));
}

DatacenterSpec
baseSpec(const std::string &name, const PresetOptions &options)
{
    DatacenterSpec spec;
    spec.name = name;
    spec.intervalMinutes = options.intervalMinutes;
    spec.weeks = options.weeks;
    spec.seed = options.seed;
    // 4 suites x 2 MSB x 2 SB x 4 RPP x 4 racks = 256 racks.
    spec.topology = power::TopologySpec{};
    return spec;
}

void
add(DatacenterSpec &spec, ServiceProfile profile, int count, double scale)
{
    spec.services.push_back({std::move(profile), scaled(count, scale)});
}

/** Dampen instance-level heterogeneity (for DC1). */
ServiceProfile
homogenized(ServiceProfile p)
{
    p.phaseJitterHours *= 0.4;
    p.amplitudeJitterFrac *= 0.5;
    p.popularityZipf *= 0.3;
    return p;
}

} // namespace

DatacenterSpec
buildDc1Spec(const PresetOptions &options)
{
    DatacenterSpec spec = baseSpec("DC1", options);
    const double s = options.scale;
    // Frontend-dominated; the long tail of "service W/X/Y/Z/B" are
    // web-like LC services with near-identical daytime peaks, so the
    // datacenter offers little asynchrony to exploit.
    add(spec, homogenized(webFrontend()), 320, s);
    add(spec, homogenized(cache()), 144, s);
    add(spec, homogenized(search()), 128, s);
    add(spec, homogenized(genericLc("service W", 13.5)), 128, s);
    add(spec, homogenized(genericLc("service X", 14.0)), 128, s);
    // Day-peaking batch pools: synchronous with the LC tier (so DC1
    // stays homogeneous for placement) but convertible and throttleable.
    ServiceProfile service_y = devPool();
    service_y.name = "service Y";
    service_y.peakHour = 14.5;
    add(spec, homogenized(service_y), 128, s);
    ServiceProfile service_z = devPool();
    service_z.name = "service Z";
    service_z.peakHour = 15.0;
    add(spec, homogenized(service_z), 128, s);
    // A modest day-peaking batch pool (synchronous with the LC tier, so
    // it adds little asynchrony) gives the reshaping runtime something
    // to convert and throttle in DC1.
    ServiceProfile batch_pool = devPool();
    batch_pool.name = "batchpool";
    add(spec, homogenized(batch_pool), 128, s);
    add(spec, homogenized(photoStorage()), 160, s);
    add(spec, homogenized(mobileDev()), 144, s);
    return spec;
}

DatacenterSpec
buildDc2Spec(const PresetOptions &options)
{
    DatacenterSpec spec = baseSpec("DC2", options);
    spec.seed = options.seed + 1;
    const double s = options.scale;
    // Mixed population: storage backends with night backups, flat batch
    // fleets, and a moderate LC tier.
    add(spec, labServer(), 304, s);
    add(spec, webFrontend(), 256, s);
    add(spec, devPool(), 224, s);
    add(spec, dbBackend(), 144, s);
    add(spec, hadoop(), 144, s);
    add(spec, cache(), 160, s);
    add(spec, batchJob(), 80, s);
    add(spec, searchIndex(), 64, s);
    add(spec, search(), 96, s);
    add(spec, dbSecondary(), 64, s);
    return spec;
}

DatacenterSpec
buildDc3Spec(const PresetOptions &options)
{
    DatacenterSpec spec = baseSpec("DC3", options);
    spec.seed = options.seed + 2;
    const double s = options.scale;
    // Highly heterogeneous and LC-heavy: tall daytime frontend peaks,
    // flat hadoop, night-peaking databases, evening-peaking instagram.
    add(spec, webFrontend(), 320, s);
    add(spec, hadoop(), 224, s);
    add(spec, dbBackend(), 336, s);
    add(spec, search(), 128, s);
    add(spec, mobileDev(), 112, s);
    add(spec, instagram(), 128, s);
    add(spec, cache(), 80, s);
    add(spec, dbSecondary(), 128, s);
    add(spec, genericLc("service A", 17.0), 32, s);
    add(spec, labServer(), 48, s);
    return spec;
}

std::vector<DatacenterSpec>
buildAllDcSpecs(const PresetOptions &options)
{
    return {buildDc1Spec(options), buildDc2Spec(options),
            buildDc3Spec(options)};
}

DatacenterSpec
buildFleetSpec(int population, const PresetOptions &options)
{
    SOSIM_REQUIRE(population > 0 && population % 256 == 0,
                  "buildFleetSpec: population must be a positive "
                  "multiple of 256");
    DatacenterSpec spec;
    spec.name = "fleet" + std::to_string(population);
    spec.intervalMinutes = options.intervalMinutes;
    spec.weeks = options.weeks;
    spec.seed = options.seed + 7;

    // ~8 instances per rack, 16 racks per SB, 2 MSBs per suite; the
    // remaining SB count factors into suites x sbsPerMsb as near-square
    // as possible.  population 1024 -> 2x2x2x4x4 = 128 racks; 4096 ->
    // 4x2x4x4x4 = 512 racks.
    const int sb_total = population / 128;
    const int sb_pairs = sb_total / 2;
    int suites = 1;
    for (int d = 1; d * d <= sb_pairs; ++d)
        if (sb_pairs % d == 0)
            suites = d;
    spec.topology.suites = suites;
    spec.topology.msbsPerSuite = 2;
    spec.topology.sbsPerMsb = sb_pairs / suites;
    spec.topology.rppsPerSb = 4;
    spec.topology.racksPerRpp = 4;

    // Eight services, population/8 instances each, spanning the shape
    // space: day-peaking LC (web, cache, search), flat batch (hadoop),
    // day-peaking dev, night-peaking storage (db, lab) and an evening
    // peak (instagram).  From 8192 instances up the mix widens to the
    // full sixteen-service catalog (population/16 each) — a 10k+ fleet
    // with only eight shapes clusters unrealistically cleanly, and the
    // wider mix keeps the placement-scaling benches honest.  Smaller
    // fleets keep the original eight-service mix unchanged (the 4096
    // golden fleet digest depends on it).
    if (population >= 8192) {
        const int per_service = population / 16;
        for (auto profile :
             {webFrontend(), cache(), search(), hadoop(), devPool(),
              dbBackend(), labServer(), instagram(), searchIndex(),
              mobileDev(), dbSecondary(), batchJob(), photoStorage(),
              webFrontend(), cache(), hadoop()})
            spec.services.push_back({std::move(profile), per_service});
        return spec;
    }
    const int per_service = population / 8;
    for (auto profile :
         {webFrontend(), cache(), search(), hadoop(), devPool(),
          dbBackend(), labServer(), instagram()})
        spec.services.push_back({std::move(profile), per_service});
    return spec;
}

} // namespace sosim::workload
