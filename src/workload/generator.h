#ifndef SOSIM_WORKLOAD_GENERATOR_H
#define SOSIM_WORKLOAD_GENERATOR_H

/**
 * @file
 * Synthetic datacenter trace generation.
 *
 * The generator is the repo's substitute for production power telemetry
 * (see DESIGN.md section 2): given a DatacenterSpec it produces, for every
 * service instance, `weeks` weekly power traces plus per-service activity
 * curves, all as a pure function of the spec's seed.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "power/power_tree.h"
#include "trace/time_series.h"
#include "workload/service_profile.h"

namespace sosim::workload {

/** One service and how many instances of it the datacenter hosts. */
struct ServiceDeployment {
    ServiceProfile profile;
    int instanceCount = 0;
};

/** Complete description of a synthetic datacenter. */
struct DatacenterSpec {
    std::string name = "dc";
    power::TopologySpec topology;
    std::vector<ServiceDeployment> services;
    /** Weeks of trace to generate; the last week is the test week. */
    int weeks = 3;
    /** Trace sampling interval in minutes; must divide a week evenly. */
    int intervalMinutes = 5;
    /** Master seed; the whole generation is a pure function of it. */
    std::uint64_t seed = 1;
    /** Week-to-week amplitude wobble (stddev of a weekly scale factor). */
    double weekScaleStd = 0.02;
    /** Week-to-week phase drift (stddev, hours). */
    double weekPhaseStd = 0.15;
    /**
     * Deterministic week-over-week traffic growth: week w's activity is
     * additionally scaled by (1 + weeklyGrowth)^w.  Models the secular
     * load growth that motivates proactive capacity planning.
     */
    double weeklyGrowth = 0.0;

    /** Total instances across all services. */
    int totalInstances() const;
};

/** Per-instance generation output. */
struct InstanceInfo {
    /** Index into the spec's services vector. */
    std::size_t serviceIndex = 0;
    /** Popularity weight (mean 1 across the service's instances). */
    double popularity = 1.0;
    /** Amplitude jitter multiplier. */
    double amplitude = 1.0;
    /** Phase shift in hours relative to the service activity curve. */
    double phaseHours = 0.0;
    /** One power trace per generated week. */
    std::vector<trace::TimeSeries> weeklyPower;
};

/**
 * A fully generated datacenter: instances with weekly power traces and
 * per-service nominal activity curves.
 */
class GeneratedDatacenter
{
  public:
    GeneratedDatacenter(DatacenterSpec spec,
                        std::vector<InstanceInfo> instances,
                        std::vector<std::vector<trace::TimeSeries>>
                            service_activity);

    const DatacenterSpec &spec() const { return spec_; }

    std::size_t instanceCount() const { return instances_.size(); }

    const InstanceInfo &instance(std::size_t i) const;

    std::size_t serviceCount() const { return spec_.services.size(); }

    const ServiceProfile &serviceProfile(std::size_t s) const;

    /** Index of the service that instance i belongs to. */
    std::size_t serviceOf(std::size_t i) const;

    /** Indices of all instances of service s. */
    std::vector<std::size_t> instancesOfService(std::size_t s) const;

    /** Indices of all instances whose service class matches. */
    std::vector<std::size_t> instancesOfClass(ServiceClass klass) const;

    /**
     * The paper's averaged I-traces (Eq. 4): the element-wise mean of all
     * weeks except the last.  These are the training inputs for placement
     * and policy learning.
     */
    std::vector<trace::TimeSeries> trainingTraces() const;

    /** The held-out final week of every instance (evaluation inputs). */
    std::vector<trace::TimeSeries> testTraces() const;

    /** Power trace of one instance for one week. */
    const trace::TimeSeries &weekTrace(std::size_t i, int week) const;

    /**
     * Nominal (jitter-free, popularity-1) activity curve of service s in
     * a given week, in [0, 1].  The reshaping runtime uses the LC
     * services' activity as the traffic signal.
     */
    const trace::TimeSeries &serviceActivity(std::size_t s, int week) const;

  private:
    DatacenterSpec spec_;
    std::vector<InstanceInfo> instances_;
    /** service_activity_[s][w]: activity of service s in week w. */
    std::vector<std::vector<trace::TimeSeries>> serviceActivity_;
};

/**
 * Generate a datacenter from a specification.  Deterministic: equal specs
 * (including seed) produce identical traces.
 */
GeneratedDatacenter generate(const DatacenterSpec &spec);

/**
 * The service-independent activity curve value for a profile.
 *
 * Exposed for tests: evaluates the diurnal bump/base/weekend model at a
 * given minute of the week with an explicit phase shift.
 *
 * @param profile      Service shape parameters.
 * @param minute_of_week Minute within [0, kMinutesPerWeek).
 * @param phase_hours  Additional phase shift in hours.
 * @return Activity in [0, 1].
 */
double activityAt(const ServiceProfile &profile, int minute_of_week,
                  double phase_hours = 0.0);

} // namespace sosim::workload

#endif // SOSIM_WORKLOAD_GENERATOR_H
