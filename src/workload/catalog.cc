#include "catalog.h"

namespace sosim::workload {

std::string
serviceClassName(ServiceClass klass)
{
    switch (klass) {
      case ServiceClass::LatencyCritical:
        return "LC";
      case ServiceClass::Batch:
        return "Batch";
      case ServiceClass::Storage:
        return "Storage";
      case ServiceClass::Infra:
        return "Infra";
    }
    return "?";
}

ServiceProfile
webFrontend()
{
    ServiceProfile p;
    p.name = "frontend";
    p.klass = ServiceClass::LatencyCritical;
    p.idleFraction = 0.24;
    p.peakHour = 14.0;       // User-activity daytime peak.
    p.peakWidthHours = 4.5;
    p.baseActivity = 0.22;
    p.weekendFactor = 0.88;
    p.phaseJitterHours = 0.6;
    p.amplitudeJitterFrac = 0.06;
    p.popularityZipf = 0.15;
    p.noiseStd = 0.012;
    return p;
}

ServiceProfile
cache()
{
    ServiceProfile p = webFrontend();
    p.name = "cache";
    p.idleFraction = 0.35;   // Memory-bound; flatter dynamic range.
    p.peakHour = 13.5;
    p.peakWidthHours = 5.0;
    p.baseActivity = 0.45;
    p.phaseJitterHours = 0.4;
    p.noiseStd = 0.008;
    return p;
}

ServiceProfile
search()
{
    ServiceProfile p = webFrontend();
    p.name = "search";
    p.peakHour = 15.0;
    p.peakWidthHours = 4.0;
    p.baseActivity = 0.32;
    p.popularityZipf = 0.25;
    return p;
}

ServiceProfile
searchIndex()
{
    ServiceProfile p;
    p.name = "searchindex";
    p.klass = ServiceClass::Batch;
    p.idleFraction = 0.40;
    p.peakHour = 23.0;       // Index rebuilds run overnight.
    p.peakWidthHours = 5.0;
    p.baseActivity = 0.55;
    p.weekendFactor = 1.0;
    p.phaseJitterHours = 1.5;
    p.amplitudeJitterFrac = 0.08;
    p.noiseStd = 0.02;
    return p;
}

ServiceProfile
instagram()
{
    ServiceProfile p = webFrontend();
    p.name = "instagram";
    p.peakHour = 19.0;       // Evening-skewed media traffic.
    p.peakWidthHours = 4.0;
    p.baseActivity = 0.33;
    p.weekendFactor = 1.05;  // Slightly busier on weekends.
    return p;
}

ServiceProfile
mobileDev()
{
    ServiceProfile p;
    p.name = "mobiledev";
    p.klass = ServiceClass::Batch; // Build/test jobs: throttleable.
    p.idleFraction = 0.30;
    p.peakHour = 11.0;       // Working-hours build/test load.
    p.peakWidthHours = 3.5;
    p.secondaryPeakHour = 16.0;
    p.secondaryWeight = 0.8;
    p.baseActivity = 0.20;
    p.weekendFactor = 0.45;  // Engineers mostly off on weekends.
    p.phaseJitterHours = 1.0;
    p.amplitudeJitterFrac = 0.10;
    p.noiseStd = 0.02;
    return p;
}

ServiceProfile
dbBackend()
{
    ServiceProfile p;
    p.name = "db A";
    p.klass = ServiceClass::Storage;
    p.idleFraction = 0.33;   // I/O bound: modest daytime power.
    p.peakHour = 2.0;        // Nightly backup compression peak.
    p.peakWidthHours = 2.5;
    p.secondaryPeakHour = 14.0; // Small daytime query-miss bump.
    p.secondaryWeight = 0.20;
    p.baseActivity = 0.20;
    p.weekendFactor = 1.0;   // Backups run every night.
    p.phaseJitterHours = 0.8;
    p.amplitudeJitterFrac = 0.07;
    p.popularityZipf = 0.30; // Shard popularity skew.
    p.noiseStd = 0.012;
    return p;
}

ServiceProfile
dbSecondary()
{
    ServiceProfile p = dbBackend();
    p.name = "db B";
    p.peakHour = 4.0;        // Staggered backup window.
    p.secondaryWeight = 0.25;
    return p;
}

ServiceProfile
hadoop()
{
    ServiceProfile p;
    p.name = "hadoop";
    p.klass = ServiceClass::Batch;
    p.idleFraction = 0.45;
    p.peakHour = 23.5;       // Scheduler drains the queue overnight...
    p.peakWidthHours = 7.0;  // ...on top of constantly high utilization.
    p.baseActivity = 0.70;
    p.weekendFactor = 1.0;
    p.dayOfWeekVariation = 0.03;
    p.phaseJitterHours = 3.0;
    p.amplitudeJitterFrac = 0.10;
    p.noiseStd = 0.04;       // Job-mix churn looks like noise.
    p.burstsPerDay = 0.5;    // Occasional large jobs.
    p.burstMagnitude = 1.15;
    p.burstMinutes = 120;
    return p;
}

ServiceProfile
batchJob()
{
    ServiceProfile p = hadoop();
    p.name = "batchjob";
    p.baseActivity = 0.65;
    p.peakHour = 1.0;        // Nightly ETL window.
    p.peakWidthHours = 4.0;
    p.noiseStd = 0.03;
    return p;
}

ServiceProfile
devPool()
{
    ServiceProfile p = mobileDev();
    p.name = "dev";
    p.klass = ServiceClass::Batch;
    p.peakHour = 12.0;
    p.secondaryPeakHour = -1.0;
    p.secondaryWeight = 0.0;
    p.baseActivity = 0.25;
    return p;
}

ServiceProfile
labServer()
{
    ServiceProfile p;
    p.name = "labserver";
    p.klass = ServiceClass::Infra;
    p.idleFraction = 0.35;
    p.peakHour = 10.0;
    p.peakWidthHours = 8.0;
    p.baseActivity = 0.40;
    p.weekendFactor = 0.75;
    p.dayOfWeekVariation = 0.08;
    p.phaseJitterHours = 2.5;
    p.amplitudeJitterFrac = 0.12;
    p.noiseStd = 0.03;
    return p;
}

ServiceProfile
photoStorage()
{
    ServiceProfile p;
    p.name = "photostorage";
    p.klass = ServiceClass::Storage;
    p.idleFraction = 0.50;   // Spinning disks dominate: flat power.
    p.peakHour = 20.0;       // Evening upload peak.
    p.peakWidthHours = 5.0;
    p.baseActivity = 0.35;
    p.weekendFactor = 1.10;
    p.phaseJitterHours = 1.0;
    p.amplitudeJitterFrac = 0.05;
    p.noiseStd = 0.01;
    return p;
}

ServiceProfile
genericLc(const std::string &name, double peak_hour)
{
    ServiceProfile p = webFrontend();
    p.name = name;
    p.peakHour = peak_hour;
    return p;
}

ServiceProfile
genericBatch(const std::string &name)
{
    ServiceProfile p = batchJob();
    p.name = name;
    return p;
}

} // namespace sosim::workload
