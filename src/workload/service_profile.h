#ifndef SOSIM_WORKLOAD_SERVICE_PROFILE_H
#define SOSIM_WORKLOAD_SERVICE_PROFILE_H

/**
 * @file
 * Parametric description of one service's power behaviour.
 *
 * These profiles substitute for Facebook's production power telemetry.
 * Each profile encodes the statistical shape the paper reports in
 * section 2.3 (Figure 6): a diurnal activity curve (user-facing services
 * peak in the day, database backups peak at night, hadoop runs flat and
 * high), day-of-week modulation, and two sources of instance-level
 * heterogeneity — phase/amplitude jitter and Zipf popularity skew.
 */

#include <string>

namespace sosim::workload {

/** Role of a service in the reshaping runtime (section 4). */
enum class ServiceClass {
    /** User-facing, latency-critical ("LC"): web, cache, search, ... */
    LatencyCritical,
    /** Throughput-oriented batch: hadoop, batchjob, dev, ... */
    Batch,
    /** I/O-bound storage backends with nightly compression peaks: db. */
    Storage,
    /** Infrastructure/lab services with weak diurnal structure. */
    Infra,
};

/** Short printable name of a service class. */
std::string serviceClassName(ServiceClass klass);

/** True for classes the runtime treats as latency-critical. */
inline bool
isLatencyCritical(ServiceClass klass)
{
    return klass == ServiceClass::LatencyCritical;
}

/** True for classes the runtime may throttle/boost/convert. */
inline bool
isBatch(ServiceClass klass)
{
    return klass == ServiceClass::Batch;
}

/**
 * Shape and heterogeneity parameters of one service.
 *
 * Per-instance power at time t is
 *   p(t) = maxPowerWatts * (idleFraction
 *          + (1 - idleFraction) * a_i(t) * pop_i * amp_i) + noise,
 * where a_i(t) is the service activity curve shifted by the instance's
 * phase jitter, pop_i its Zipf popularity weight, and amp_i its amplitude
 * jitter.  The result is clamped to [0, maxPowerWatts].
 */
struct ServiceProfile {
    std::string name;
    ServiceClass klass = ServiceClass::LatencyCritical;

    /** Nominal per-server maximum power (normalized units). */
    double maxPowerWatts = 1.0;
    /** Fraction of max power drawn at zero activity. */
    double idleFraction = 0.30;

    /** Hour-of-day (0-24) at which activity peaks. */
    double peakHour = 14.0;
    /** Gaussian sigma of the daily activity bump, in hours. */
    double peakWidthHours = 4.0;
    /** Hour of an optional secondary bump; negative disables it. */
    double secondaryPeakHour = -1.0;
    /** Weight of the secondary bump relative to the primary. */
    double secondaryWeight = 0.0;
    /** Activity floor (0-1): what remains at the quietest hour. */
    double baseActivity = 0.25;
    /** Activity multiplier applied on Saturday/Sunday. */
    double weekendFactor = 0.85;
    /** Amplitude of mild day-of-week variation (0 disables). */
    double dayOfWeekVariation = 0.05;

    /** Stddev of the per-instance phase shift, in hours. */
    double phaseJitterHours = 0.5;
    /** Stddev of the per-instance multiplicative amplitude jitter. */
    double amplitudeJitterFrac = 0.05;
    /** Zipf exponent of per-instance popularity (0 = uniform). */
    double popularityZipf = 0.0;

    /** Stddev of per-sample Gaussian measurement noise (power units). */
    double noiseStd = 0.01;
    /** Probability per day of a traffic burst on an instance. */
    double burstsPerDay = 0.0;
    /** Multiplier applied to activity during a burst. */
    double burstMagnitude = 1.3;
    /** Burst duration in minutes. */
    int burstMinutes = 30;
};

} // namespace sosim::workload

#endif // SOSIM_WORKLOAD_SERVICE_PROFILE_H
