#ifndef SOSIM_WORKLOAD_CATALOG_H
#define SOSIM_WORKLOAD_CATALOG_H

/**
 * @file
 * Catalog of named service profiles modeled on the workloads the paper
 * names in Figures 5 and 6: web/frontend traffic (day-peaking,
 * latency-critical), db backends (night-peaking backup compression),
 * hadoop (flat and high), plus the long tail of cache/search/dev/lab
 * services that appear in the three datacenters' top-10 breakdowns.
 */

#include "workload/service_profile.h"

namespace sosim::workload {

/** Every profile the catalog knows, for enumeration in tests. */
ServiceProfile webFrontend();
ServiceProfile cache();
ServiceProfile search();
ServiceProfile searchIndex();
ServiceProfile instagram();
ServiceProfile mobileDev();
ServiceProfile dbBackend();     ///< "db A": night backup peak.
ServiceProfile dbSecondary();   ///< "db B": smaller, later backup peak.
ServiceProfile hadoop();
ServiceProfile batchJob();
ServiceProfile devPool();
ServiceProfile labServer();
ServiceProfile photoStorage();
ServiceProfile genericLc(const std::string &name, double peak_hour);
ServiceProfile genericBatch(const std::string &name);

} // namespace sosim::workload

#endif // SOSIM_WORKLOAD_CATALOG_H
