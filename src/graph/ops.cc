#include "ops.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstring>
#include <utility>

#include "baseline/oblivious.h"
#include "cluster/shape_index.h"
#include "core/asynchrony.h"
#include "core/fingerprints.h"
#include "core/service_traces.h"
#include "obs/obs.h"
#include "trace/kernels.h"
#include "trace/stats_cache.h"
#include "util/error.h"

namespace sosim::pipeline {

namespace {

std::uint64_t
fpDouble(std::uint64_t h, double d)
{
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return graph::hashCombine(h, bits);
}

std::uint64_t
fpInjectionReport(std::uint64_t h, const fault::InjectionReport &r)
{
    h = graph::hashCombine(h, r.samplesDropped);
    h = graph::hashCombine(h, r.samplesStuck);
    h = graph::hashCombine(h, r.tracesLost);
    h = graph::hashCombine(h, r.tracesSkewed);
    h = graph::hashCombine(h, r.blackoutSamples);
    h = graph::hashCombine(h, r.instancesBlackedOut);
    return graph::hashCombine(h, r.nodesDerated);
}

std::uint64_t
fpInjectedTraces(const fault::InjectedTraces &v)
{
    return fpInjectionReport(core::fingerprintTraces(v.traces), v.report);
}

std::uint64_t
fpRepairedTraces(const trace::RepairedTraces &v)
{
    std::uint64_t h = core::fingerprintTraces(v.traces);
    h = graph::hashCombine(h, v.summary.tracesDegraded);
    h = graph::hashCombine(h, v.summary.samplesRepaired);
    h = graph::hashCombine(h, v.summary.tracesUnrepairable);
    return graph::fingerprintDoubles(v.summary.validBefore.data(),
                                     v.summary.validBefore.size(), h);
}

std::uint64_t
fpPoints(const std::vector<cluster::Point> &points)
{
    std::uint64_t h = graph::hashCombine(graph::kFnvOffset, points.size());
    for (const auto &p : points)
        h = graph::fingerprintDoubles(p.data(), p.size(), h);
    return h;
}

std::uint64_t
fpRemapResult(const RemapResult &v)
{
    std::uint64_t h = core::fingerprintAssignment(v.assignment);
    h = graph::hashCombine(h, v.swaps.size());
    for (const auto &s : v.swaps) {
        h = graph::hashCombine(h, s.instanceA);
        h = graph::hashCombine(h, s.instanceB);
        h = graph::hashCombine(h, static_cast<std::uint64_t>(s.rackA));
        h = graph::hashCombine(h, static_cast<std::uint64_t>(s.rackB));
    }
    return h;
}

std::uint64_t
fpMeasurement(const core::MonitorMeasurement &m)
{
    std::uint64_t h = fpDouble(graph::kFnvOffset, m.sumOfPeaks);
    h = fpDouble(h, m.rootPeak);
    h = fpDouble(h, m.fragmentationRatio);
    h = graph::hashCombine(h, m.degradedData ? 1u : 0u);
    h = fpDouble(h, m.validFraction);
    h = graph::hashCombine(h, m.repairedSamples);
    h = graph::hashCombine(h, m.excludedInstances);
    return fpDouble(h, m.shapeDrift);
}

std::uint64_t
fpHeadroomReport(const core::HeadroomReport &r)
{
    std::uint64_t h = graph::hashCombine(graph::kFnvOffset,
                                         r.levels.size());
    for (const auto &lc : r.levels) {
        h = graph::hashCombine(h, static_cast<std::uint64_t>(lc.level));
        h = fpDouble(h, lc.baselineSumPeaks);
        h = fpDouble(h, lc.optimizedSumPeaks);
        h = fpDouble(h, lc.peakReductionFraction);
    }
    return h;
}

std::uint64_t
fpPopulationStats(const PopulationStats &s)
{
    std::uint64_t h = graph::hashCombine(graph::kFnvOffset,
                                         s.perTrace.size());
    for (const auto &t : s.perTrace) {
        h = fpDouble(h, t.peak);
        h = fpDouble(h, t.valley);
        h = fpDouble(h, t.sum);
        h = fpDouble(h, t.mean);
        h = graph::hashCombine(h, t.peakIndex);
    }
    h = fpDouble(h, s.totalMeanPower);
    return fpDouble(h, s.peakOfPeaks);
}

graph::Value
policyValue(trace::RepairPolicy policy)
{
    return graph::Value::of(
        policy, graph::fingerprintString("repair-policy:" +
                                         trace::repairPolicyName(policy)));
}

graph::Value
planValue(const fault::FaultPlan &plan)
{
    return graph::Value::of(plan, plan.fingerprint());
}

power::Level
levelFromName(const std::string &name)
{
    std::string upper = name;
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    for (const auto level : power::kAllLevels)
        if (power::levelName(level) == upper)
            return level;
    SOSIM_REQUIRE(false, "unknown power level '" + name +
                             "' (SUITE|MSB|SB|RPP|RACK)");
}

} // namespace

const std::vector<trace::TimeSeries> &
tracesOf(const graph::Value &v)
{
    if (v.is<std::vector<trace::TimeSeries>>())
        return v.as<std::vector<trace::TimeSeries>>();
    if (v.is<fault::InjectedTraces>())
        return v.as<fault::InjectedTraces>().traces;
    if (v.is<trace::RepairedTraces>())
        return v.as<trace::RepairedTraces>().traces;
    SOSIM_REQUIRE(false,
                  "pipeline: value does not carry a trace population");
}

const power::Assignment &
assignmentOf(const graph::Value &v)
{
    if (v.is<power::Assignment>())
        return v.as<power::Assignment>();
    if (v.is<RemapResult>())
        return v.as<RemapResult>().assignment;
    SOSIM_REQUIRE(false, "pipeline: value does not carry an assignment");
}

graph::Handle
InjectFaultsOp::add(graph::OpGraph &g, std::string name,
                    graph::Handle traces, graph::Handle plan)
{
    return g.op(std::move(name), {traces, plan}, 0,
                [](const std::vector<graph::Value> &ins) {
                    auto out = fault::injectedCopy(
                        tracesOf(ins[0]),
                        ins[1].as<fault::FaultPlan>());
                    const auto fp = fpInjectedTraces(out);
                    return graph::Value::of(std::move(out), fp);
                });
}

graph::Handle
RepairOp::add(graph::OpGraph &g, std::string name, graph::Handle traces,
              graph::Handle policy)
{
    return g.op(std::move(name), {traces, policy}, 0,
                [](const std::vector<graph::Value> &ins) {
                    auto out = trace::repairedCopy(
                        tracesOf(ins[0]),
                        ins[1].as<trace::RepairPolicy>());
                    const auto fp = fpRepairedTraces(out);
                    return graph::Value::of(std::move(out), fp);
                });
}

graph::Handle
StatsOp::add(graph::OpGraph &g, std::string name, graph::Handle traces)
{
    return g.op(
        std::move(name), {traces}, 0,
        [](const std::vector<graph::Value> &ins) {
            const auto &population = tracesOf(ins[0]);
            PopulationStats out;
            // The shared lazy-stats helper (also behind
            // TimeSeries::stats and TraceArena::stats) computes each
            // row's stats exactly once per invalidation epoch.
            trace::LazyStatsTable table;
            table.reset(population.size());
            out.perTrace.reserve(population.size());
            for (std::size_t i = 0; i < population.size(); ++i) {
                const auto &s = table.get(i, [&] {
                    return trace::computeStats(
                        trace::TraceView(population[i]));
                });
                out.perTrace.push_back(s);
                out.totalMeanPower += s.mean;
                out.peakOfPeaks = std::max(out.peakOfPeaks, s.peak);
            }
            const auto fp = fpPopulationStats(out);
            return graph::Value::of(std::move(out), fp);
        });
}

graph::Handle
ScoreOp::add(graph::OpGraph &g, std::string name, graph::Handle traces)
{
    return g.op(std::move(name), {traces}, 0,
                [](const std::vector<graph::Value> &ins) {
                    const double score =
                        core::asynchronyScore(tracesOf(ins[0]));
                    return graph::Value::of(
                        score, fpDouble(graph::kFnvOffset, score));
                });
}

graph::Handle
ShapeIndexOp::add(graph::OpGraph &g, std::string name, graph::Handle traces)
{
    return g.op(std::move(name), {traces}, 0,
                [](const std::vector<graph::Value> &ins) {
                    const auto &population = tracesOf(ins[0]);
                    std::vector<const double *> rows;
                    rows.reserve(population.size());
                    for (const auto &ts : population)
                        rows.push_back(ts.samples().data());
                    const std::size_t samples =
                        population.empty() ? 0
                                           : population.front().size();
                    auto index =
                        cluster::ShapeIndex::build(rows, samples);
                    const auto fp = index.fingerprint();
                    return graph::Value::of(std::move(index), fp);
                });
}

graph::Handle
EmbedOp::add(graph::OpGraph &g, std::string name, graph::Handle traces,
             graph::Handle services, graph::Handle config,
             graph::Handle shapes)
{
    return g.op(
        std::move(name), {traces, services, config, shapes}, 0,
        [](const std::vector<graph::Value> &ins) {
            const auto &population = tracesOf(ins[0]);
            const auto &service_of =
                ins[1].as<std::vector<std::size_t>>();
            const auto &cfg = ins[2].as<core::PlacementConfig>();
            if (cfg.embedding == core::PlacementEmbedding::kShape) {
                // The shared index already embedded this population;
                // forward its points (fpPoints, not the index
                // fingerprint, so the distribute node sees the same
                // identity either way the points were produced).
                auto points =
                    ins[3].as<cluster::ShapeIndex>().points();
                const auto fp = fpPoints(points);
                return graph::Value::of(std::move(points), fp);
            }
            const auto straces = core::extractServiceTraces(
                population, service_of, cfg.topServices);
            auto points = core::embedPopulation(
                population, straces.straces, cfg.scoring, cfg.kernels);
            const auto fp = fpPoints(points);
            return graph::Value::of(std::move(points), fp);
        });
}

graph::Handle
PlaceOp::add(graph::OpGraph &g, std::string name, graph::Handle embedding,
             graph::Handle config,
             std::shared_ptr<const power::PowerTree> tree)
{
    const auto tree_fp = core::fingerprintTree(*tree);
    return g.op(
        std::move(name), {embedding, config}, tree_fp,
        [tree = std::move(tree)](const std::vector<graph::Value> &ins) {
            const auto &points =
                ins[0].as<std::vector<cluster::Point>>();
            const auto &cfg = ins[1].as<core::PlacementConfig>();
            auto assignment = core::PlacementEngine(*tree, cfg)
                                  .placeWithEmbedding(points);
            const auto fp = core::fingerprintAssignment(assignment);
            return graph::Value::of(std::move(assignment), fp);
        });
}

graph::Handle
ObliviousPlaceOp::add(graph::OpGraph &g, std::string name,
                      graph::Handle services,
                      std::shared_ptr<const power::PowerTree> tree)
{
    const auto tree_fp = core::fingerprintTree(*tree);
    return g.op(
        std::move(name), {services}, tree_fp,
        [tree = std::move(tree)](const std::vector<graph::Value> &ins) {
            auto assignment = baseline::obliviousPlacement(
                *tree, ins[0].as<std::vector<std::size_t>>());
            const auto fp = core::fingerprintAssignment(assignment);
            return graph::Value::of(std::move(assignment), fp);
        });
}

graph::Handle
RemapOp::add(graph::OpGraph &g, std::string name, graph::Handle assignment,
             graph::Handle traces, graph::Handle config,
             graph::Handle shapes,
             std::shared_ptr<const power::PowerTree> tree)
{
    const auto tree_fp = core::fingerprintTree(*tree);
    return g.op(
        std::move(name), {assignment, traces, config, shapes}, tree_fp,
        [tree = std::move(tree)](const std::vector<graph::Value> &ins) {
            RemapResult out;
            out.assignment = assignmentOf(ins[0]);
            const auto &population = tracesOf(ins[1]);
            const auto &cfg = ins[2].as<core::RemapConfig>();
            // A repaired population carries pre-repair validity; an
            // all-valid vector gates nothing, so the clean path stays
            // bit-identical to refining without one.
            const std::vector<double> *validity = nullptr;
            if (ins[1].is<trace::RepairedTraces>())
                validity = &ins[1]
                                .as<trace::RepairedTraces>()
                                .summary.validBefore;
            out.swaps =
                core::Remapper(*tree, cfg)
                    .refineInPlace(out.assignment, population, validity,
                                   &ins[3].as<cluster::ShapeIndex>());
            const auto fp = fpRemapResult(out);
            return graph::Value::of(std::move(out), fp);
        });
}

graph::Handle
BreakerTripsOp::add(graph::OpGraph &g, std::string name,
                    graph::Handle traces, graph::Handle assignment,
                    graph::Handle plan,
                    std::shared_ptr<const power::PowerTree> tree)
{
    const auto tree_fp = core::fingerprintTree(*tree);
    return g.op(
        std::move(name), {traces, assignment, plan}, tree_fp,
        [tree = std::move(tree)](const std::vector<graph::Value> &ins) {
            fault::InjectedTraces out;
            out.traces = tracesOf(ins[0]);
            out.report = fault::injectBreakerTrips(
                out.traces, *tree, assignmentOf(ins[1]),
                ins[2].as<fault::FaultPlan>());
            const auto fp = fpInjectedTraces(out);
            return graph::Value::of(std::move(out), fp);
        });
}

graph::Handle
CompareOp::add(graph::OpGraph &g, std::string name, graph::Handle traces,
               graph::Handle baseline, graph::Handle optimized,
               std::shared_ptr<const power::PowerTree> tree)
{
    const auto tree_fp = core::fingerprintTree(*tree);
    return g.op(
        std::move(name), {traces, baseline, optimized}, tree_fp,
        [tree = std::move(tree)](const std::vector<graph::Value> &ins) {
            auto report = core::comparePlacements(
                *tree, tracesOf(ins[0]), assignmentOf(ins[1]),
                assignmentOf(ins[2]));
            const auto fp = fpHeadroomReport(report);
            return graph::Value::of(std::move(report), fp);
        });
}

graph::Handle
MonitorOp::add(graph::OpGraph &g, std::string name, graph::Handle traces,
               graph::Handle assignment, graph::Handle config,
               graph::Handle shapes,
               std::shared_ptr<const power::PowerTree> tree)
{
    const auto tree_fp = core::fingerprintTree(*tree);
    return g.op(
        std::move(name), {traces, assignment, config, shapes}, tree_fp,
        [tree = std::move(tree)](const std::vector<graph::Value> &ins) {
            const auto m = core::measureWeek(
                *tree, ins[2].as<core::MonitorConfig>(),
                tracesOf(ins[0]), assignmentOf(ins[1]),
                &ins[3].as<cluster::ShapeIndex>());
            return graph::Value::of(m, fpMeasurement(m));
        });
}

Pipeline
buildPipeline(const PipelineSpec &spec)
{
    SOSIM_SPAN("pipeline.build");
    Pipeline p;
    p.spec = spec;

    const auto dc = workload::generate(spec.dc);
    p.instanceCount = dc.instanceCount();
    auto training = dc.trainingTraces();
    auto test = dc.testTraces();
    SOSIM_REQUIRE(!training.empty(), "buildPipeline: no instances");
    p.shape = {dc.instanceCount(), training.front().size()};
    std::vector<std::size_t> service_of(dc.instanceCount());
    for (std::size_t i = 0; i < dc.instanceCount(); ++i)
        service_of[i] = dc.serviceOf(i);

    // An unfaulted pipeline still carries inject/repair nodes, fed by
    // an empty "none" plan: injection schedules nothing and repair
    // finds nothing to fill, so both are value-level no-ops and the
    // graph shape does not depend on the fault switch.  The empty plan
    // is built for the wildcard shape {0, 0}, which composes with a
    // population of any shape — input edits and what-if overlays may
    // resample or resize the trace populations freely.
    const fault::FaultPlan plan =
        spec.faulted
            ? fault::FaultPlan::build(spec.faultSeed,
                                      fault::faultProfile(spec.faultProfile),
                                      p.shape)
            : fault::FaultPlan::build(0, fault::faultProfile("none"),
                                      fault::TraceShape{});

    p.tree = std::make_shared<const power::PowerTree>(spec.dc.topology);

    auto &g = p.graph;
    {
        const auto training_fp = core::fingerprintTraces(training);
        p.trainingIn =
            g.input("training",
                    graph::Value::of(std::move(training), training_fp));
        const auto test_fp = core::fingerprintTraces(test);
        p.testIn =
            g.input("test", graph::Value::of(std::move(test), test_fp));
        const auto services_fp = core::fingerprintServices(service_of);
        p.serviceOfIn = g.input(
            "service_of",
            graph::Value::of(std::move(service_of), services_fp));
    }
    p.planIn = g.input("fault.plan", planValue(plan));
    p.repairPolicyIn =
        g.input("repair.policy", policyValue(spec.repairPolicy));
    p.embedConfigIn = g.input(
        "placement.embed_config",
        graph::Value::of(spec.placement,
                         core::fingerprintEmbedConfig(spec.placement)));
    p.distributeConfigIn = g.input(
        "placement.distribute_config",
        graph::Value::of(
            spec.placement,
            core::fingerprintDistributeConfig(spec.placement)));
    p.remapConfigIn = g.input(
        "remap.config",
        graph::Value::of(spec.remap,
                         core::fingerprintRemapConfig(spec.remap)));
    p.monitorConfigIn = g.input(
        "monitor.config",
        graph::Value::of(
            spec.monitor,
            core::fingerprintMonitorMeasureConfig(spec.monitor)));
    for (int w = 0; w < spec.dc.weeks; ++w) {
        std::vector<trace::TimeSeries> week;
        week.reserve(dc.instanceCount());
        for (std::size_t i = 0; i < dc.instanceCount(); ++i)
            week.push_back(dc.weekTrace(i, w));
        const auto week_fp = core::fingerprintTraces(week);
        p.weekIns.push_back(
            g.input("week." + std::to_string(w),
                    graph::Value::of(std::move(week), week_fp)));
    }

    p.injectTrainingOp = InjectFaultsOp::add(
        g, "fault.inject.training", p.trainingIn, p.planIn);
    p.repairTrainingOp = RepairOp::add(
        g, "trace.repair.training", p.injectTrainingOp, p.repairPolicyIn);
    p.injectTestOp =
        InjectFaultsOp::add(g, "fault.inject.test", p.testIn, p.planIn);
    p.repairTestOp = RepairOp::add(g, "trace.repair.test", p.injectTestOp,
                                   p.repairPolicyIn);
    p.statsOp = StatsOp::add(g, "trace.stats.training",
                             p.repairTrainingOp);
    p.scoreOp = ScoreOp::add(g, "score.asynchrony.training",
                             p.repairTrainingOp);
    p.obliviousOp =
        ObliviousPlaceOp::add(g, "place.oblivious", p.serviceOfIn, p.tree);
    // One shape-embedding build for the whole pipeline: the kShape
    // embedding path, remap pruning, and every week's drift diagnostic
    // all read this node's cached output.
    p.shapeIndexOp =
        ShapeIndexOp::add(g, "cluster.shape_index", p.repairTrainingOp);
    p.embedOp = EmbedOp::add(g, "place.embed", p.repairTrainingOp,
                             p.serviceOfIn, p.embedConfigIn,
                             p.shapeIndexOp);
    p.placeOp = PlaceOp::add(g, "place.distribute", p.embedOp,
                             p.distributeConfigIn, p.tree);
    p.remapOp = RemapOp::add(g, "remap.refine", p.placeOp,
                             p.repairTrainingOp, p.remapConfigIn,
                             p.shapeIndexOp, p.tree);
    p.tripsOp = BreakerTripsOp::add(g, "fault.trips.test", p.repairTestOp,
                                    p.remapOp, p.planIn, p.tree);
    p.compareOp = CompareOp::add(g, "compare.headroom", p.tripsOp,
                                 p.obliviousOp, p.remapOp, p.tree);
    for (std::size_t w = 0; w < p.weekIns.size(); ++w) {
        p.weekInjectOps.push_back(InjectFaultsOp::add(
            g, "fault.inject.week." + std::to_string(w), p.weekIns[w],
            p.planIn));
        p.weekMeasureOps.push_back(MonitorOp::add(
            g, "monitor.measure.week." + std::to_string(w),
            p.weekInjectOps[w], p.remapOp, p.monitorConfigIn,
            p.shapeIndexOp, p.tree));
    }
    return p;
}

PipelineResult
runPipeline(Pipeline &p, const graph::Overlay &overlay)
{
    SOSIM_SPAN("pipeline.run");
    const auto hits0 = p.graph.cacheHits();
    const auto misses0 = p.graph.cacheMisses();
    // Empty overlay -> base path (persistent memo + dirty set); overlay
    // -> only the shadowed inputs' downstream cone re-evaluates.
    const auto ev = [&](graph::Handle h) -> graph::Value {
        if (overlay.empty())
            return p.graph.eval(h);
        return p.graph.eval(h, overlay);
    };

    PipelineResult r;
    r.plan = ev(p.planIn).as<fault::FaultPlan>();
    {
        const auto injected = ev(p.injectTrainingOp);
        r.trainingFaults = injected.as<fault::InjectedTraces>().report;
    }
    {
        const auto repaired = ev(p.repairTrainingOp);
        r.trainingRepair =
            repaired.as<trace::RepairedTraces>().summary;
    }
    {
        const auto oblivious = ev(p.obliviousOp);
        r.oblivious = assignmentOf(oblivious);
    }
    {
        const auto remapped = ev(p.remapOp);
        const auto &result = remapped.as<RemapResult>();
        r.optimized = result.assignment;
        r.swaps = result.swaps;
    }
    {
        const auto tripped = ev(p.tripsOp);
        r.tripFaults = tripped.as<fault::InjectedTraces>().report;
    }
    {
        const auto compared = ev(p.compareOp);
        r.comparison = compared.as<core::HeadroomReport>();
    }
    {
        const auto stats = ev(p.statsOp);
        r.trainingStats = stats.as<PopulationStats>();
    }
    r.trainingScore = ev(p.scoreOp).as<double>();

    // The stateful half of monitoring: thresholds and the baseline
    // window live outside the graph, so they read the overlaid config
    // directly and measurements stay cacheable across threshold sweeps.
    const auto monitor_cfg =
        ev(p.monitorConfigIn).as<core::MonitorConfig>();
    core::FragmentationMonitor monitor(*p.tree, monitor_cfg);
    for (const auto measure : p.weekMeasureOps) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto value = ev(measure);
        const auto &m = value.as<core::MonitorMeasurement>();
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        r.weekly.push_back(monitor.ingest(m, seconds));
    }

    r.cacheHits = p.graph.cacheHits() - hits0;
    r.opsExecuted = p.graph.cacheMisses() - misses0;
    return r;
}

graph::Overlay
whatIfMaxSwaps(const Pipeline &p, int max_swaps)
{
    auto cfg = p.spec.remap;
    cfg.maxSwaps = max_swaps;
    return graph::Overlay().set(
        p.remapConfigIn,
        graph::Value::of(cfg, core::fingerprintRemapConfig(cfg)));
}

graph::Overlay
whatIfPlacementSeed(const Pipeline &p, std::uint64_t seed)
{
    auto cfg = p.spec.placement;
    cfg.seed = seed;
    // Shadows only the distribute config: the embedding does not
    // observe the seed, so its cached output survives the what-if.
    return graph::Overlay().set(
        p.distributeConfigIn,
        graph::Value::of(cfg, core::fingerprintDistributeConfig(cfg)));
}

graph::Overlay
whatIfTopServices(const Pipeline &p, std::size_t top_services)
{
    auto cfg = p.spec.placement;
    cfg.topServices = top_services;
    return graph::Overlay().set(
        p.embedConfigIn,
        graph::Value::of(cfg, core::fingerprintEmbedConfig(cfg)));
}

graph::Overlay
whatIfClustersPerChild(const Pipeline &p, std::size_t n)
{
    auto cfg = p.spec.placement;
    cfg.clustersPerChild = n;
    return graph::Overlay().set(
        p.distributeConfigIn,
        graph::Value::of(cfg, core::fingerprintDistributeConfig(cfg)));
}

graph::Overlay
whatIfPlacementEmbedding(const Pipeline &p,
                         core::PlacementEmbedding embedding)
{
    auto cfg = p.spec.placement;
    cfg.embedding = embedding;
    // Only the embed config changes; the shape-index node's output is
    // already cached, so flipping to kShape re-runs just the embed and
    // distribute cone.
    return graph::Overlay().set(
        p.embedConfigIn,
        graph::Value::of(cfg, core::fingerprintEmbedConfig(cfg)));
}

graph::Overlay
whatIfRepairPolicy(const Pipeline &p, trace::RepairPolicy policy)
{
    return graph::Overlay().set(p.repairPolicyIn, policyValue(policy));
}

graph::Overlay
whatIfFaultPlan(const Pipeline &p, std::uint64_t seed,
                const std::string &profile)
{
    return graph::Overlay().set(
        p.planIn, planValue(fault::FaultPlan::build(
                      seed, fault::faultProfile(profile), p.shape)));
}

graph::Overlay
whatIfMonitorLevel(const Pipeline &p, power::Level level)
{
    auto cfg = p.spec.monitor;
    cfg.level = level;
    return graph::Overlay().set(
        p.monitorConfigIn,
        graph::Value::of(cfg,
                         core::fingerprintMonitorMeasureConfig(cfg)));
}

graph::Overlay
whatIfMonitorThresholds(const Pipeline &p, double remap_threshold,
                        double replace_threshold)
{
    auto cfg = p.spec.monitor;
    cfg.remapThreshold = remap_threshold;
    cfg.replaceThreshold = replace_threshold;
    // The measure fingerprint excludes thresholds, so this overlay's
    // cone evaluates entirely from cache (zero op executions).
    return graph::Overlay().set(
        p.monitorConfigIn,
        graph::Value::of(cfg,
                         core::fingerprintMonitorMeasureConfig(cfg)));
}

graph::Overlay
parseWhatIf(const Pipeline &p, const std::string &text)
{
    // Accumulate edits into config copies first, then shadow each
    // touched input exactly once — two keys landing on the same config
    // (e.g. placement-seed + clusters-per-child, or both thresholds)
    // must compose, not clobber each other.
    auto placement = p.spec.placement;
    auto remap = p.spec.remap;
    auto monitor = p.spec.monitor;
    bool embed_changed = false;
    bool distribute_changed = false;
    bool remap_changed = false;
    bool monitor_changed = false;
    graph::Overlay overlay;

    std::size_t pos = 0;
    while (pos < text.size()) {
        auto comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string item = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const auto eq = item.find('=');
        SOSIM_REQUIRE(eq != std::string::npos && eq > 0,
                      "--what-if: expected KEY=VALUE, got '" + item +
                          "'");
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        if (key == "max-swaps") {
            remap.maxSwaps = std::stoi(value);
            remap_changed = true;
        } else if (key == "placement-seed") {
            placement.seed = std::stoull(value);
            distribute_changed = true;
        } else if (key == "top-services") {
            placement.topServices =
                static_cast<std::size_t>(std::stoul(value));
            embed_changed = true;
        } else if (key == "clusters-per-child") {
            placement.clustersPerChild =
                static_cast<std::size_t>(std::stoul(value));
            distribute_changed = true;
        } else if (key == "placement-embedding") {
            if (value == "score") {
                placement.embedding =
                    core::PlacementEmbedding::kScoreVector;
            } else if (value == "shape") {
                placement.embedding = core::PlacementEmbedding::kShape;
            } else {
                SOSIM_REQUIRE(false, "--what-if: placement-embedding "
                                     "must be score|shape, got '" +
                                         value + "'");
            }
            embed_changed = true;
        } else if (key == "repair-policy") {
            overlay.set(p.repairPolicyIn,
                        policyValue(trace::repairPolicyFromName(value)));
        } else if (key == "fault-plan") {
            const auto plan_spec = fault::parseFaultPlanSpec(value);
            overlay.set(p.planIn,
                        planValue(fault::FaultPlan::build(
                            plan_spec.seed,
                            fault::faultProfile(plan_spec.profile),
                            p.shape)));
        } else if (key == "monitor-level") {
            monitor.level = levelFromName(value);
            monitor_changed = true;
        } else if (key == "remap-threshold") {
            monitor.remapThreshold = std::stod(value);
            monitor_changed = true;
        } else if (key == "replace-threshold") {
            monitor.replaceThreshold = std::stod(value);
            monitor_changed = true;
        } else {
            SOSIM_REQUIRE(false,
                          "--what-if: unknown key '" + key + "'");
        }
    }

    if (embed_changed)
        overlay.set(p.embedConfigIn,
                    graph::Value::of(
                        placement,
                        core::fingerprintEmbedConfig(placement)));
    if (distribute_changed)
        overlay.set(p.distributeConfigIn,
                    graph::Value::of(
                        placement,
                        core::fingerprintDistributeConfig(placement)));
    if (remap_changed)
        overlay.set(p.remapConfigIn,
                    graph::Value::of(
                        remap, core::fingerprintRemapConfig(remap)));
    if (monitor_changed)
        overlay.set(
            p.monitorConfigIn,
            graph::Value::of(
                monitor,
                core::fingerprintMonitorMeasureConfig(monitor)));
    return overlay;
}

} // namespace sosim::pipeline
