#include "graph.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>

#include "obs/obs.h"

namespace sosim::graph {

std::uint64_t
fnv1a64(const void *data, std::size_t bytes, std::uint64_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    // Word-wise FNV-1a step: mix b into a one byte at a time would be
    // slow and no stronger; xor-multiply per 64-bit word is enough for
    // cache keys that only ever compare for equality.
    a ^= b;
    a *= kFnvPrime;
    a ^= a >> 32;
    a *= kFnvPrime;
    return a;
}

std::uint64_t
fingerprintDoubles(const double *data, std::size_t n, std::uint64_t seed)
{
    std::uint64_t h = hashCombine(seed, n);
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t bits;
        std::memcpy(&bits, &data[i], sizeof(bits));
        h = hashCombine(h, bits);
    }
    return h;
}

std::uint64_t
fingerprintString(std::string_view s, std::uint64_t seed)
{
    return fnv1a64(s.data(), s.size(), seed);
}

std::uint64_t
nonceFingerprint()
{
    // Start away from 0 so a nonce can never collide with an
    // uninitialized fingerprint field; odd stride keeps the sequence
    // trivially unique for the life of the process.
    static std::atomic<std::uint64_t> next{0x9e3779b97f4a7c15ull};
    return next.fetch_add(0x2545f4914f6cdd1dull,
                          std::memory_order_relaxed);
}

Handle
OpGraph::input(std::string name, Value v)
{
    SOSIM_REQUIRE(!v.empty(), "OpGraph::input: empty value");
    SOSIM_REQUIRE(byName_.find(name) == byName_.end(),
                  "OpGraph: duplicate node name");
    Node n;
    n.name = name;
    n.inputValue = std::move(v);
    n.dirty = false;
    byName_.emplace(std::move(name), nodes_.size());
    nodes_.push_back(std::move(n));
    return Handle{nodes_.size() - 1};
}

void
OpGraph::setInput(Handle h, Value v)
{
    SOSIM_REQUIRE(h.valid() && h.id < nodes_.size(),
                  "OpGraph::setInput: invalid handle");
    Node &n = nodes_[h.id];
    SOSIM_REQUIRE(n.fn == nullptr,
                  "OpGraph::setInput: handle is not an input node");
    SOSIM_REQUIRE(!v.empty(), "OpGraph::setInput: empty value");
    if (v.fingerprint() == n.inputValue.fingerprint()) {
        n.inputValue = std::move(v);
        return; // content unchanged: the cone stays clean
    }
    n.inputValue = std::move(v);
    markDownstreamDirty(h.id);
}

Handle
OpGraph::op(std::string name, std::vector<Handle> inputs,
            std::uint64_t config_fp, OpFn fn)
{
    SOSIM_REQUIRE(fn != nullptr, "OpGraph::op: null function");
    SOSIM_REQUIRE(byName_.find(name) == byName_.end(),
                  "OpGraph: duplicate node name");
    Node n;
    n.name = name;
    n.configFp = config_fp;
    n.fn = std::move(fn);
    n.inputs.reserve(inputs.size());
    for (const Handle &in : inputs) {
        SOSIM_REQUIRE(in.valid() && in.id < nodes_.size(),
                      "OpGraph::op: invalid input handle");
        n.inputs.push_back(in.id);
    }
    const std::size_t id = nodes_.size();
    byName_.emplace(std::move(name), id);
    nodes_.push_back(std::move(n));
    for (const std::size_t in : nodes_[id].inputs)
        nodes_[in].outputs.push_back(id);
    return Handle{id};
}

const Value &
OpGraph::eval(Handle h)
{
    SOSIM_REQUIRE(h.valid() && h.id < nodes_.size(),
                  "OpGraph::eval: invalid handle");
    return evalBase(h.id);
}

Value
OpGraph::eval(Handle h, const Overlay &overlay)
{
    SOSIM_REQUIRE(h.valid() && h.id < nodes_.size(),
                  "OpGraph::eval: invalid handle");
    // The overlay affects exactly the downstream cone of the shadowed
    // inputs; everything else evaluates on the base path and shares the
    // base memo.
    std::vector<unsigned char> affected(nodes_.size(), 0);
    std::vector<std::size_t> frontier;
    for (const auto &[id, v] : overlay.values_) {
        SOSIM_REQUIRE(id < nodes_.size(),
                      "OpGraph::eval: overlay handle out of range");
        SOSIM_REQUIRE(nodes_[id].fn == nullptr,
                      "OpGraph::eval: overlay must shadow input nodes");
        if (!affected[id]) {
            affected[id] = 1;
            frontier.push_back(id);
        }
    }
    while (!frontier.empty()) {
        const std::size_t id = frontier.back();
        frontier.pop_back();
        for (const std::size_t out : nodes_[id].outputs)
            if (!affected[out]) {
                affected[out] = 1;
                frontier.push_back(out);
            }
    }
    return evalShadowed(h.id, overlay, affected);
}

Handle
OpGraph::find(const std::string &name) const
{
    const auto it = byName_.find(name);
    if (it == byName_.end())
        return Handle{};
    return Handle{it->second};
}

std::size_t
OpGraph::evalCount(Handle h) const
{
    return node(h).evalCount;
}

std::size_t
OpGraph::totalEvals() const
{
    std::size_t total = 0;
    for (const Node &n : nodes_)
        total += n.evalCount;
    return total;
}

const std::string &
OpGraph::name(Handle h) const
{
    return node(h).name;
}

const OpGraph::Node &
OpGraph::node(Handle h) const
{
    SOSIM_REQUIRE(h.valid() && h.id < nodes_.size(),
                  "OpGraph: invalid handle");
    return nodes_[h.id];
}

void
OpGraph::markDownstreamDirty(std::size_t id)
{
    std::vector<std::size_t> frontier(1, id);
    while (!frontier.empty()) {
        const std::size_t cur = frontier.back();
        frontier.pop_back();
        for (const std::size_t out : nodes_[cur].outputs) {
            if (nodes_[out].dirty)
                continue; // its cone is already marked
            nodes_[out].dirty = true;
            SOSIM_EVENT(.kind = obs::EventKind::GraphDirty,
                        .label = nodes_[out].name, .a = out);
            frontier.push_back(out);
        }
    }
}

const Value *
OpGraph::cacheLookup(Node &n, std::uint64_t sig)
{
    for (std::size_t i = 0; i < n.cache.size(); ++i) {
        if (n.cache[i].sig != sig)
            continue;
        // Move to front (MRU) so sweeps that flip-flop between a few
        // configurations keep all of them resident.
        if (i != 0)
            std::rotate(n.cache.begin(), n.cache.begin() + (long)i,
                        n.cache.begin() + (long)i + 1);
        return &n.cache.front().value;
    }
    return nullptr;
}

Value
OpGraph::executeSig(Node &n, std::uint64_t sig,
                    const std::vector<Value> &ins)
{
    ++misses_;
    SOSIM_COUNT("graph.op.cache_miss");
    Value out;
#if SOSIM_OBS_ENABLED
    {
        obs::ScopedSpan span("graph.op." + n.name);
        SOSIM_EVENT_SCOPE(.kind = obs::EventKind::GraphEval,
                          .label = n.name, .a = sig,
                          .b = ins.empty() ? 0 : ins[0].fingerprint(),
                          .c = ins.size() < 2 ? 0 : ins[1].fingerprint(),
                          .d = ins.size() < 3 ? 0 : ins[2].fingerprint());
        const auto t0 = std::chrono::steady_clock::now();
        out = n.fn(ins);
        const auto t1 = std::chrono::steady_clock::now();
        const double eval_ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        SOSIM_OBSERVE("graph.op.eval_ms", eval_ms);
    }
#else
    out = n.fn(ins);
#endif
    SOSIM_REQUIRE(!out.empty(), "OpGraph: op returned an empty value");
    ++n.evalCount;
    n.cache.insert(n.cache.begin(), CacheEntry{sig, out});
    if (n.cache.size() > kCacheEntries)
        n.cache.pop_back();
    return out;
}

const Value &
OpGraph::evalBase(std::size_t id)
{
    Node &n = nodes_[id];
    if (n.fn == nullptr) {
        SOSIM_REQUIRE(!n.inputValue.empty(),
                      "OpGraph: input node has no value");
        return n.inputValue;
    }
    if (!n.dirty && !n.lastValue.empty()) {
        ++hits_;
        SOSIM_COUNT("graph.op.cache_hit");
        SOSIM_EVENT(.kind = obs::EventKind::GraphCacheHit,
                    .label = n.name, .a = n.lastSig);
        return n.lastValue;
    }
    std::vector<Value> ins;
    ins.reserve(n.inputs.size());
    std::uint64_t sig =
        hashCombine(fingerprintString(n.name), n.configFp);
    for (const std::size_t in : n.inputs) {
        const Value &v = evalBase(in);
        sig = hashCombine(sig, v.fingerprint());
        ins.push_back(v);
    }
    if (const Value *cached = cacheLookup(n, sig)) {
        ++hits_;
        SOSIM_COUNT("graph.op.cache_hit");
        SOSIM_EVENT(.kind = obs::EventKind::GraphCacheHit,
                    .label = n.name, .a = sig);
        n.lastSig = sig;
        n.lastValue = *cached;
        n.dirty = false;
        return n.lastValue;
    }
    Value out = executeSig(n, sig, ins);
    n.lastSig = sig;
    n.lastValue = std::move(out);
    n.dirty = false;
    return n.lastValue;
}

Value
OpGraph::evalShadowed(std::size_t id, const Overlay &overlay,
                      const std::vector<unsigned char> &affected)
{
    Node &n = nodes_[id];
    if (n.fn == nullptr) {
        const auto it = overlay.values_.find(id);
        if (it != overlay.values_.end())
            return it->second;
        SOSIM_REQUIRE(!n.inputValue.empty(),
                      "OpGraph: input node has no value");
        return n.inputValue;
    }
    if (!affected[id])
        return evalBase(id); // share the base memo outside the cone
    std::vector<Value> ins;
    ins.reserve(n.inputs.size());
    std::uint64_t sig =
        hashCombine(fingerprintString(n.name), n.configFp);
    for (const std::size_t in : n.inputs) {
        Value v = evalShadowed(in, overlay, affected);
        sig = hashCombine(sig, v.fingerprint());
        ins.push_back(std::move(v));
    }
    if (const Value *cached = cacheLookup(n, sig)) {
        ++hits_;
        SOSIM_COUNT("graph.op.cache_hit");
        SOSIM_EVENT(.kind = obs::EventKind::GraphCacheHit,
                    .label = n.name, .a = sig);
        return *cached;
    }
    // Deliberately leaves lastValue/dirty untouched: overlay results
    // live only in the MRU cache, so the base memo survives any number
    // of what-ifs.
    return executeSig(n, sig, ins);
}

} // namespace sosim::graph
