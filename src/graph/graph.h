#ifndef SOSIM_GRAPH_GRAPH_H
#define SOSIM_GRAPH_GRAPH_H

/**
 * @file
 * OpGraph: a small DAG of typed ops with content-hash caching, dirty-set
 * invalidation and what-if overlays.
 *
 * The pipeline (inject -> repair -> stats -> embed -> place -> remap ->
 * monitor) used to be hard-wired call chains: editing one trace or one
 * config field recomputed everything from scratch.  Here each stage is a
 * node whose output is an immutable Value; a node's *signature* is the
 * hash of its op name, its config fingerprint and its inputs'
 * fingerprints, so a node re-executes only when something it can actually
 * observe changed.  Two layers make re-runs cheap:
 *
 *   - dirty set: OpGraph::setInput() marks exactly the downstream cone of
 *     the edited input dirty.  Clean nodes short-circuit to their memoized
 *     value without even re-hashing their inputs.
 *   - signature cache: every node keeps a small MRU cache of
 *     (signature, value) pairs, so flip-flopping between configurations
 *     (base vs overlay, A/B sweep points) revisits old results instead of
 *     recomputing them.
 *
 * Overlays are the what-if surface: an Overlay shadows a subset of input
 * nodes with alternative Values, and OpGraph::eval(handle, overlay)
 * evaluates under that shadow *without copying the base inputs or
 * disturbing the base memo*.  Only the cone downstream of the shadowed
 * inputs is re-evaluated; everything else is served from the base memo,
 * which is how ablation sweeps share upstream work across sweep points.
 *
 * Determinism: evaluation order is the depth-first order of each node's
 * input list; ops must be pure functions of their inputs (enforced by
 * convention, not the type system) and caching never changes *what* is
 * computed, only *whether* it is recomputed — so strict-mode results are
 * bit-identical to the un-graphed call chain.  Thread-safety: an OpGraph
 * is single-threaded (ops may parallelize internally with
 * util::parallelFor, which is deterministic).
 *
 * Telemetry: each op execution opens a "graph.op.<name>" span, counts
 * graph.op.cache_hit / graph.op.cache_miss, and records its latency in
 * the graph.op.eval_ms histogram.
 */

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <typeinfo>
#include <utility>
#include <vector>

#include "util/error.h"

namespace sosim::graph {

/** FNV-1a offset basis; the seed of every fingerprint in this module. */
inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
/** FNV-1a prime. */
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/** FNV-1a over a byte range, continuing from `seed`. */
std::uint64_t fnv1a64(const void *data, std::size_t bytes,
                      std::uint64_t seed = kFnvOffset);

/** Mix a second hash into a first (order-sensitive). */
std::uint64_t hashCombine(std::uint64_t a, std::uint64_t b);

/** Fingerprint of a double array (bitwise, word at a time). */
std::uint64_t fingerprintDoubles(const double *data, std::size_t n,
                                 std::uint64_t seed = kFnvOffset);

/** Fingerprint of a string (op names, config enums rendered as text). */
std::uint64_t fingerprintString(std::string_view s,
                                std::uint64_t seed = kFnvOffset);

/**
 * A fingerprint guaranteed to differ from every other fingerprint in the
 * process (a global counter in disguise).  Ephemeral one-shot graphs —
 * the thin wrappers that keep legacy entry points' signatures — use nonce
 * fingerprints so they never pay for hashing a whole trace population
 * they will evaluate exactly once.
 */
std::uint64_t nonceFingerprint();

/**
 * An immutable, type-erased, cheaply-copyable value flowing along graph
 * edges.  Holds a shared_ptr to the payload plus the payload's content
 * fingerprint; two Values with equal fingerprints are treated as equal by
 * the caching machinery, so fingerprints must be collision-free in
 * practice (content hashes, or nonces for evaluate-once graphs).
 */
class Value
{
  public:
    Value() = default;

    /** Box `payload` with its content fingerprint. */
    template <typename T>
    static Value of(T payload, std::uint64_t fingerprint)
    {
        Value v;
        v.box_ = std::make_shared<const T>(std::move(payload));
        v.type_ = &typeid(T);
        v.fp_ = fingerprint;
        return v;
    }

    /** Box `payload` under a process-unique nonce fingerprint. */
    template <typename T>
    static Value ofNonce(T payload)
    {
        return of(std::move(payload), nonceFingerprint());
    }

    /** Typed view of the payload; the type must match exactly. */
    template <typename T>
    const T &as() const
    {
        SOSIM_REQUIRE(box_ != nullptr, "graph::Value: empty value");
        SOSIM_REQUIRE(*type_ == typeid(T),
                      "graph::Value: payload type mismatch");
        return *static_cast<const T *>(box_.get());
    }

    /** True when the payload is exactly a T. */
    template <typename T>
    bool is() const
    {
        return box_ != nullptr && *type_ == typeid(T);
    }

    /** True when no payload has been boxed. */
    bool empty() const { return box_ == nullptr; }

    /** Content fingerprint (identity for caching purposes). */
    std::uint64_t fingerprint() const { return fp_; }

  private:
    std::shared_ptr<const void> box_;
    const std::type_info *type_ = nullptr;
    std::uint64_t fp_ = 0;
};

/** Opaque id of a node in an OpGraph. */
struct Handle {
    static constexpr std::size_t kInvalid = ~std::size_t{0};

    std::size_t id = kInvalid;

    bool valid() const { return id != kInvalid; }
    bool operator==(const Handle &o) const { return id == o.id; }
    bool operator!=(const Handle &o) const { return id != o.id; }
};

/**
 * A shadow map over a graph's *input* nodes: evaluating under an overlay
 * substitutes the shadowed Values without touching the base graph.
 * Overlays compose — `a.merged(b)` applies b's entries on top of a's —
 * so a sweep can stack "derate rack 7" on "re-place with seed 9".
 */
class Overlay
{
  public:
    Overlay() = default;

    /** Shadow input `h` with `v`; returns *this for chaining. */
    Overlay &set(Handle h, Value v)
    {
        SOSIM_REQUIRE(h.valid(), "graph::Overlay: invalid handle");
        SOSIM_REQUIRE(!v.empty(), "graph::Overlay: empty value");
        values_[h.id] = std::move(v);
        return *this;
    }

    /** This overlay with `later`'s entries applied on top. */
    Overlay merged(const Overlay &later) const
    {
        Overlay out(*this);
        for (const auto &[id, v] : later.values_)
            out.values_[id] = v;
        return out;
    }

    /** True when `h` is shadowed. */
    bool shadows(Handle h) const { return values_.count(h.id) != 0; }

    /** Number of shadowed inputs. */
    std::size_t size() const { return values_.size(); }

    bool empty() const { return values_.empty(); }

  private:
    friend class OpGraph;
    std::map<std::size_t, Value> values_;
};

/** The function body of an op: pure inputs -> output. */
using OpFn = std::function<Value(const std::vector<Value> &)>;

/**
 * A DAG of input nodes and op nodes.  Build with input()/op(), evaluate
 * with eval(); edit inputs with setInput() (dirty-set propagation) or
 * evaluate what-ifs with eval(handle, overlay).  Move-only.
 */
class OpGraph
{
  public:
    /** Per-node MRU signature-cache capacity (base + a few overlays). */
    static constexpr std::size_t kCacheEntries = 4;

    OpGraph() = default;
    OpGraph(const OpGraph &) = delete;
    OpGraph &operator=(const OpGraph &) = delete;
    OpGraph(OpGraph &&) noexcept = default;
    OpGraph &operator=(OpGraph &&) noexcept = default;

    /** Add an input node holding `v`.  Names must be unique. */
    Handle input(std::string name, Value v);

    /**
     * Replace input `h`'s value.  If the fingerprint actually changed,
     * the downstream cone is marked dirty; otherwise this is a no-op.
     */
    void setInput(Handle h, Value v);

    /**
     * Add an op node.  `config_fp` fingerprints whatever configuration
     * the op closes over (it is hashed into the node's signature);
     * configuration that should invalidate selectively belongs in an
     * input node instead.  Names must be unique.
     */
    Handle op(std::string name, std::vector<Handle> inputs,
              std::uint64_t config_fp, OpFn fn);

    /** Evaluate a node (and lazily its ancestors); memoized. */
    const Value &eval(Handle h);

    /** Evaluate a node under an overlay; the base memo is untouched. */
    Value eval(Handle h, const Overlay &overlay);

    /** Node handle by unique name (invalid handle when absent). */
    Handle find(const std::string &name) const;

    /** Number of nodes (inputs + ops). */
    std::size_t size() const { return nodes_.size(); }

    /** Times node `h`'s function body actually executed (lifetime). */
    std::size_t evalCount(Handle h) const;

    /** Total op executions across the graph (sum of evalCount). */
    std::size_t totalEvals() const;

    /** Graph-local cache hits (clean-node short-circuits + MRU hits). */
    std::uint64_t cacheHits() const { return hits_; }

    /** Graph-local cache misses (op executions). */
    std::uint64_t cacheMisses() const { return misses_; }

    /** Name of node `h`. */
    const std::string &name(Handle h) const;

  private:
    struct CacheEntry {
        std::uint64_t sig = 0;
        Value value;
    };

    struct Node {
        std::string name;
        std::vector<std::size_t> inputs;
        std::vector<std::size_t> outputs;
        std::uint64_t configFp = 0;
        OpFn fn; // null for input nodes
        Value inputValue;
        bool dirty = true;
        std::uint64_t lastSig = 0;
        Value lastValue;
        std::vector<CacheEntry> cache;
        std::size_t evalCount = 0;
    };

    const Node &node(Handle h) const;
    void markDownstreamDirty(std::size_t id);
    const Value &evalBase(std::size_t id);
    Value evalShadowed(std::size_t id, const Overlay &overlay,
                       const std::vector<unsigned char> &affected);
    Value executeSig(Node &n, std::uint64_t sig,
                     const std::vector<Value> &ins);
    const Value *cacheLookup(Node &n, std::uint64_t sig);

    std::vector<Node> nodes_;
    std::map<std::string, std::size_t, std::less<>> byName_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace sosim::graph

#endif // SOSIM_GRAPH_GRAPH_H
