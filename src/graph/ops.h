#ifndef SOSIM_GRAPH_OPS_H
#define SOSIM_GRAPH_OPS_H

/**
 * @file
 * Typed pipeline ops and the report pipeline built from them.
 *
 * graph/graph.h is domain-agnostic; this layer binds the library's
 * stages to it as typed ops — InjectFaultsOp, RepairOp, StatsOp,
 * ScoreOp, EmbedOp, PlaceOp, RemapOp, MonitorOp and friends — each a
 * pure function from upstream Values to one output Value carrying a
 * content fingerprint, so downstream nodes re-run only when a value
 * they can observe actually changed.
 *
 * buildPipeline() assembles the full report pipeline (the exact
 * sequence of `sosim report`: generate -> inject -> repair -> oblivious
 * baseline -> embed -> distribute -> remap -> breaker trips -> compare
 * -> weekly monitoring) as one persistent OpGraph whose inputs are the
 * trace populations and config structs.  runPipeline() evaluates it —
 * optionally under a what-if Overlay — and returns every artifact the
 * report prints.  Strict-mode guarantee: with an empty overlay the
 * results are bit-identical to the legacy call chain (the golden-digest
 * ctest pins this), because each op body IS the legacy function.
 *
 * Config splitting: the placement config is exposed as two inputs,
 * fingerprinted by the fields each stage observes
 * (core::fingerprintEmbedConfig / fingerprintDistributeConfig), so a
 * what-if that only changes the clustering seed re-runs the distribute
 * cone while the embedding stays cached.  Likewise the monitor config
 * fingerprint excludes the action thresholds — those act in
 * FragmentationMonitor::ingest, outside the graph — so a threshold-only
 * what-if re-executes zero ops.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/headroom.h"
#include "core/monitor.h"
#include "core/placement.h"
#include "core/remap.h"
#include "fault/fault_plan.h"
#include "fault/inject.h"
#include "graph/graph.h"
#include "power/power_tree.h"
#include "trace/repair.h"
#include "trace/time_series.h"
#include "workload/generator.h"

namespace sosim::pipeline {

/** Per-instance summary statistics of a trace population (StatsOp). */
struct PopulationStats {
    /** Stats of each instance's trace, in population order. */
    std::vector<trace::TraceStats> perTrace;
    /** Sum of the per-trace means (total average power). */
    double totalMeanPower = 0.0;
    /** Largest per-trace peak. */
    double peakOfPeaks = 0.0;
};

/** Output of RemapOp: the refined assignment plus the accepted swaps. */
struct RemapResult {
    power::Assignment assignment;
    std::vector<core::SwapRecord> swaps;
};

/**
 * Tolerant trace-population accessor: accepts a Value carrying a plain
 * std::vector<trace::TimeSeries>, a fault::InjectedTraces or a
 * trace::RepairedTraces, so ops compose regardless of which upstream
 * stage produced their traces.  Fatal on anything else.
 */
const std::vector<trace::TimeSeries> &tracesOf(const graph::Value &v);

/** Tolerant assignment accessor: power::Assignment or RemapResult. */
const power::Assignment &assignmentOf(const graph::Value &v);

// ---------------------------------------------------------------------
// Typed op builders.  Each add() appends one node to `g` whose body is
// the corresponding library function; ops that read the power tree take
// it as a shared_ptr (captured by the node) and bake
// core::fingerprintTree into their config fingerprint.
// ---------------------------------------------------------------------

/** fault::injectedCopy(traces, plan) -> fault::InjectedTraces. */
struct InjectFaultsOp {
    static graph::Handle add(graph::OpGraph &g, std::string name,
                             graph::Handle traces, graph::Handle plan);
};

/** trace::repairedCopy(traces, policy) -> trace::RepairedTraces. */
struct RepairOp {
    static graph::Handle add(graph::OpGraph &g, std::string name,
                             graph::Handle traces, graph::Handle policy);
};

/** Per-trace stats via the shared trace::LazyStatsTable helper. */
struct StatsOp {
    static graph::Handle add(graph::OpGraph &g, std::string name,
                             graph::Handle traces);
};

/** core::asynchronyScore of the whole population -> double. */
struct ScoreOp {
    static graph::Handle add(graph::OpGraph &g, std::string name,
                             graph::Handle traces);
};

/**
 * cluster::ShapeIndex::build over a trace population ->
 * cluster::ShapeIndex.  The one shared shape-embedding build: its
 * cached output (keyed by the index's own content fingerprint) feeds
 * the kShape embedding path, remap pruning and the monitor's drift
 * diagnostic, so the population is shape-embedded once per pipeline no
 * matter how many consumers run or how many what-if overlays re-enter
 * the graph.
 */
struct ShapeIndexOp {
    static graph::Handle add(graph::OpGraph &g, std::string name,
                             graph::Handle traces);
};

/**
 * S-trace extraction + population embedding
 * (core::extractServiceTraces + core::embedPopulation) ->
 * std::vector<cluster::Point>.  The config input is a full
 * core::PlacementConfig fingerprinted by fingerprintEmbedConfig.  With
 * config.embedding == kShape the op instead forwards the shared
 * ShapeIndex's points (`shapes` must then be a ShapeIndexOp over the
 * same traces); kScoreVector never evaluates the shapes input.
 */
struct EmbedOp {
    static graph::Handle add(graph::OpGraph &g, std::string name,
                             graph::Handle traces, graph::Handle services,
                             graph::Handle config, graph::Handle shapes);
};

/**
 * Recursive distribution of an embedding
 * (PlacementEngine::placeWithEmbedding) -> power::Assignment.  The
 * config input is a full core::PlacementConfig fingerprinted by
 * fingerprintDistributeConfig.
 */
struct PlaceOp {
    static graph::Handle add(graph::OpGraph &g, std::string name,
                             graph::Handle embedding, graph::Handle config,
                             std::shared_ptr<const power::PowerTree> tree);
};

/** baseline::obliviousPlacement -> power::Assignment. */
struct ObliviousPlaceOp {
    static graph::Handle add(graph::OpGraph &g, std::string name,
                             graph::Handle services,
                             std::shared_ptr<const power::PowerTree> tree);
};

/**
 * Swap-based refinement (Remapper::refineInPlace) -> RemapResult.  When
 * the traces input carries a trace::RepairedTraces, its per-instance
 * validity gates swap candidacy exactly as the CLI's faulted path does;
 * an all-valid population makes the gate a no-op, so the clean path is
 * bit-identical to refining without a validity vector.  The shared
 * ShapeIndex (`shapes`, a ShapeIndexOp over the same traces) feeds the
 * kCluster pruner so it skips its own re-embed; with pruning off the
 * index is ignored and results are bit-identical either way.
 */
struct RemapOp {
    static graph::Handle add(graph::OpGraph &g, std::string name,
                             graph::Handle assignment, graph::Handle traces,
                             graph::Handle config, graph::Handle shapes,
                             std::shared_ptr<const power::PowerTree> tree);
};

/** fault::injectBreakerTrips on a copy -> fault::InjectedTraces. */
struct BreakerTripsOp {
    static graph::Handle add(graph::OpGraph &g, std::string name,
                             graph::Handle traces, graph::Handle assignment,
                             graph::Handle plan,
                             std::shared_ptr<const power::PowerTree> tree);
};

/** core::comparePlacements -> core::HeadroomReport. */
struct CompareOp {
    static graph::Handle add(graph::OpGraph &g, std::string name,
                             graph::Handle traces, graph::Handle baseline,
                             graph::Handle optimized,
                             std::shared_ptr<const power::PowerTree> tree);
};

/**
 * core::measureWeek -> core::MonitorMeasurement (the pure half of one
 * week's observation; the stateful threshold judgment happens in
 * FragmentationMonitor::ingest, outside the graph).  The training
 * ShapeIndex (`shapes`) enables the measurement's shape-drift
 * diagnostic — it annotates, never steers, the recommended action.
 */
struct MonitorOp {
    static graph::Handle add(graph::OpGraph &g, std::string name,
                             graph::Handle traces, graph::Handle assignment,
                             graph::Handle config, graph::Handle shapes,
                             std::shared_ptr<const power::PowerTree> tree);
};

// ---------------------------------------------------------------------
// The report pipeline.
// ---------------------------------------------------------------------

/** Everything needed to build the report pipeline. */
struct PipelineSpec {
    /** Datacenter generation spec (preset + scale/interval/weeks/seed). */
    workload::DatacenterSpec dc;
    /** Degrade the generated traces with a deterministic fault plan? */
    bool faulted = false;
    std::uint64_t faultSeed = 0;
    std::string faultProfile = "harsh";
    /** Gap-repair policy applied after injection. */
    trace::RepairPolicy repairPolicy = trace::RepairPolicy::Interpolate;
    core::PlacementConfig placement;
    core::RemapConfig remap;
    core::MonitorConfig monitor;
};

/**
 * A built report pipeline: the op graph plus handles to every input and
 * op, ready for runPipeline().  Move-only (owns the OpGraph); the power
 * tree is shared with the op closures, so moving the Pipeline is safe.
 */
struct Pipeline {
    PipelineSpec spec;
    std::shared_ptr<const power::PowerTree> tree;
    /** Shape of the generated trace populations (for what-if plans). */
    fault::TraceShape shape;
    std::size_t instanceCount = 0;

    graph::OpGraph graph;

    // Inputs.
    graph::Handle trainingIn;
    graph::Handle testIn;
    graph::Handle serviceOfIn;
    graph::Handle planIn;
    graph::Handle repairPolicyIn;
    graph::Handle embedConfigIn;
    graph::Handle distributeConfigIn;
    graph::Handle remapConfigIn;
    graph::Handle monitorConfigIn;
    std::vector<graph::Handle> weekIns;

    // Ops.
    graph::Handle injectTrainingOp;
    graph::Handle repairTrainingOp;
    graph::Handle injectTestOp;
    graph::Handle repairTestOp;
    graph::Handle statsOp;
    graph::Handle scoreOp;
    graph::Handle obliviousOp;
    graph::Handle shapeIndexOp;
    graph::Handle embedOp;
    graph::Handle placeOp;
    graph::Handle remapOp;
    graph::Handle tripsOp;
    graph::Handle compareOp;
    std::vector<graph::Handle> weekInjectOps;
    std::vector<graph::Handle> weekMeasureOps;
};

/** Everything one pipeline evaluation produces (what `report` prints). */
struct PipelineResult {
    fault::FaultPlan plan;
    fault::InjectionReport trainingFaults;
    trace::RepairSummary trainingRepair;
    power::Assignment oblivious;
    power::Assignment optimized;
    std::vector<core::SwapRecord> swaps;
    fault::InjectionReport tripFaults;
    core::HeadroomReport comparison;
    std::vector<core::MonitorObservation> weekly;
    PopulationStats trainingStats;
    double trainingScore = 0.0;
    /** Op bodies executed by this run (graph cache misses delta). */
    std::uint64_t opsExecuted = 0;
    /** Graph cache hits served to this run (delta). */
    std::uint64_t cacheHits = 0;
};

/**
 * Generate the datacenter and assemble the report pipeline.  With
 * spec.faulted == false the fault plan input is the empty "none"
 * profile, which makes the inject and repair nodes value-level no-ops —
 * the pipeline shape is identical either way.
 */
Pipeline buildPipeline(const PipelineSpec &spec);

/**
 * Evaluate the pipeline, optionally under a what-if overlay, and
 * collect every report artifact.  Repeated calls are incremental: only
 * ops whose observable inputs changed re-execute (see
 * PipelineResult::opsExecuted).  The weekly observations are produced
 * by feeding each week's cached-or-recomputed measurement through a
 * fresh FragmentationMonitor in week order, using the (possibly
 * overlaid) monitor config's thresholds.
 */
PipelineResult runPipeline(Pipeline &p,
                           const graph::Overlay &overlay = {});

// ---------------------------------------------------------------------
// What-if overlay factories.  Each returns an Overlay shadowing one
// config or plan input of `p` with a modified copy of the base value;
// compose them with Overlay::merged().
// ---------------------------------------------------------------------

graph::Overlay whatIfMaxSwaps(const Pipeline &p, int max_swaps);
graph::Overlay whatIfPlacementSeed(const Pipeline &p, std::uint64_t seed);
graph::Overlay whatIfTopServices(const Pipeline &p,
                                 std::size_t top_services);
graph::Overlay whatIfClustersPerChild(const Pipeline &p, std::size_t n);
graph::Overlay whatIfPlacementEmbedding(const Pipeline &p,
                                        core::PlacementEmbedding embedding);
graph::Overlay whatIfRepairPolicy(const Pipeline &p,
                                  trace::RepairPolicy policy);
graph::Overlay whatIfFaultPlan(const Pipeline &p, std::uint64_t seed,
                               const std::string &profile);
graph::Overlay whatIfMonitorLevel(const Pipeline &p, power::Level level);
graph::Overlay whatIfMonitorThresholds(const Pipeline &p,
                                       double remap_threshold,
                                       double replace_threshold);

/**
 * Parse a `--what-if` specification — comma-separated KEY=VALUE pairs —
 * into a composed overlay.  Keys: max-swaps, placement-seed,
 * top-services, clusters-per-child, placement-embedding (score|shape),
 * repair-policy (none|hold_last|interpolate), fault-plan
 * (SEED[:PROFILE]), monitor-level (SUITE|MSB|SB|RPP|RACK),
 * remap-threshold, replace-threshold.  Fatal on an unknown key or
 * malformed pair.
 */
graph::Overlay parseWhatIf(const Pipeline &p, const std::string &text);

} // namespace sosim::pipeline

#endif // SOSIM_GRAPH_OPS_H
