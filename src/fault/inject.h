#ifndef SOSIM_FAULT_INJECT_H
#define SOSIM_FAULT_INJECT_H

/**
 * @file
 * Fault injectors: apply a FaultPlan to concrete traces and power trees.
 *
 * Injection is split from scheduling (fault_plan.h) so one plan can
 * degrade several copies of the same population — e.g. the training
 * traces before placement and the evaluation traces after — and so the
 * plan itself stays tree-agnostic.  Every injector is deterministic (a
 * pure function of its inputs) and counts what it did both in its
 * returned report and in the obs registry ("fault.*" counters), so a
 * `--metrics-out` dump shows exactly how much of the input was damaged.
 *
 * Application order inside injectTraceFaults matters and is fixed:
 * clock skew first (it permutes real samples), then stuck-at windows
 * (they overwrite real samples with a real reading), then dropout gaps
 * and whole-trace losses (they erase samples to NaN).  The NaN faults
 * go last so a gap is never "healed" by a later skew rotation.
 */

#include <cstddef>
#include <vector>

#include "fault/fault_plan.h"
#include "power/power_tree.h"
#include "trace/arena.h"
#include "trace/time_series.h"

namespace sosim::fault {

/** What an injector actually did (post-clipping, deduplicated). */
struct InjectionReport {
    /** Samples turned into NaN by dropout gaps and trace losses. */
    std::size_t samplesDropped = 0;
    /** Samples overwritten by stuck-at windows. */
    std::size_t samplesStuck = 0;
    /** Instances whose whole trace was lost. */
    std::size_t tracesLost = 0;
    /** Instances whose trace was rotated by clock skew. */
    std::size_t tracesSkewed = 0;
    /** Samples zeroed by breaker-trip blackouts. */
    std::size_t blackoutSamples = 0;
    /** Instances hit by at least one blackout. */
    std::size_t instancesBlackedOut = 0;
    /** Nodes whose budget was derated. */
    std::size_t nodesDerated = 0;
};

/** A degraded trace population plus the report of what was done to it. */
struct InjectedTraces {
    std::vector<trace::TimeSeries> traces;
    InjectionReport report;
};

/**
 * Functional form of injectTraceFaults: take the population by value,
 * degrade it, and return (degraded traces, report) as one immutable
 * result.  This is the body of the pipeline's InjectFaultsOp — a pure
 * function of (traces, plan) that an op graph can cache by content.
 */
InjectedTraces
injectedCopy(std::vector<trace::TimeSeries> traces, const FaultPlan &plan);

/**
 * Apply the plan's trace-level faults (skew, stuck-at, gaps, loss) to a
 * trace population in place.  The population must match the plan's
 * shape.  Samples already NaN are not double-counted.
 *
 * Thin wrapper: builds a one-node op graph around injectedCopy and
 * copies the result back, so the legacy in-place signature and the
 * pipeline path execute the same op body.
 */
InjectionReport
injectTraceFaults(std::vector<trace::TimeSeries> &traces,
                  const FaultPlan &plan);

/**
 * Arena overload: apply the same trace-level faults to the rows of a
 * trace::TraceArena in place (row id == plan instance index).  Fault
 * semantics, ordering and counters are identical to the TimeSeries
 * overload; the monitor uses this to degrade an arena copy of the live
 * week without unpacking it into individual series.
 */
InjectionReport
injectTraceFaults(trace::TraceArena &arena, const FaultPlan &plan);

/**
 * Apply the plan's breaker-trip events: for each trip, the target rack
 * (event.nodeOrdinal resolved over *occupied* racks, so sparse
 * topologies cannot waste a trip on an empty breaker) loses power, and
 * every instance assigned under it reads 0.0 from the trip sample for
 * the trip duration.  Zero, not NaN: the meter keeps reporting, the
 * subtree genuinely draws no power (section 2.2's tripped-breaker
 * shutdown).
 */
InjectionReport
injectBreakerTrips(std::vector<trace::TimeSeries> &traces,
                   const power::PowerTree &tree,
                   const power::Assignment &assignment,
                   const FaultPlan &plan);

/**
 * Apply the plan's derating events to the budgets of one tree level:
 * each event multiplies the budget of node (ordinal % level nodes) by
 * its factor.  Nodes with no provisioned budget (0) are skipped — there
 * is nothing to derate.  Returns the derated node ids (possibly with
 * repeats if two events land on one node).
 */
std::vector<power::NodeId>
applyDerating(power::PowerTree &tree, const FaultPlan &plan,
              power::Level level = power::Level::Rpp);

} // namespace sosim::fault

#endif // SOSIM_FAULT_INJECT_H
