#include "fault_plan.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/error.h"
#include "util/rng.h"

namespace sosim::fault {

namespace {

/**
 * Draw a length with the given mean: uniform on [1, 2*mean - 1].  Keeps
 * the schedule deterministic and the mean exact without the tail of a
 * geometric draw.
 */
std::size_t
drawLength(util::Rng &rng, double mean)
{
    const auto hi = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(2.0 * mean) - 1);
    return static_cast<std::size_t>(rng.uniformInt(1, hi));
}

/** FNV-1a 64-bit over a byte buffer. */
std::uint64_t
fnv1a(std::uint64_t h, const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
hashU64(std::uint64_t h, std::uint64_t v)
{
    return fnv1a(h, &v, sizeof v);
}

std::uint64_t
hashDouble(std::uint64_t h, double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    return hashU64(h, bits);
}

} // namespace

FaultProfile
faultProfile(const std::string &name)
{
    FaultProfile p;
    p.name = name;
    if (name == "none") {
        return p;
    }
    if (name == "mild") {
        p.sampleLossRate = 0.01;
        p.stuckSensorRate = 0.02;
        p.clockSkewRate = 0.01;
        return p;
    }
    if (name == "harsh") {
        p.sampleLossRate = 0.05;
        p.stuckSensorRate = 0.05;
        p.clockSkewRate = 0.03;
        p.traceLossRate = 0.02;
        p.breakerTrips = 1;
        p.deratedNodes = 1;
        return p;
    }
    SOSIM_REQUIRE(false, "unknown fault profile '" + name +
                             "' (none|mild|harsh)");
}

FaultPlan
FaultPlan::build(std::uint64_t seed, const FaultProfile &profile,
                 TraceShape shape)
{
    SOSIM_REQUIRE(profile.sampleLossRate >= 0.0 &&
                      profile.sampleLossRate < 1.0,
                  "FaultPlan: sampleLossRate must be in [0, 1)");
    SOSIM_REQUIRE(profile.meanGapSamples >= 1.0,
                  "FaultPlan: meanGapSamples must be >= 1");
    SOSIM_REQUIRE(profile.meanStuckSamples >= 1.0,
                  "FaultPlan: meanStuckSamples must be >= 1");
    SOSIM_REQUIRE(profile.meanTripSamples >= 1.0,
                  "FaultPlan: meanTripSamples must be >= 1");
    SOSIM_REQUIRE(profile.derateFactor > 0.0 &&
                      profile.derateFactor <= 1.0,
                  "FaultPlan: derateFactor must be in (0, 1]");
    SOSIM_REQUIRE(profile.maxSkewSamples >= 0,
                  "FaultPlan: maxSkewSamples must be >= 0");

    FaultPlan plan;
    plan.seed_ = seed;
    plan.profile_ = profile;
    plan.shape_ = shape;
    if (shape.instances == 0 || shape.samplesPerTrace == 0)
        return plan;

    util::Rng rng(seed);
    const auto n = static_cast<std::int64_t>(shape.instances);
    const auto len = static_cast<std::int64_t>(shape.samplesPerTrace);

    // Dropout gaps: draw until the sample-loss quota is met.  Gaps may
    // overlap; injection counts actual NaN'd samples, so the realized
    // rate can undershoot the quota slightly — fine for a fault model.
    const auto quota = static_cast<std::size_t>(
        profile.sampleLossRate *
        static_cast<double>(shape.instances * shape.samplesPerTrace));
    std::size_t scheduled = 0;
    while (scheduled < quota) {
        SampleGap gap;
        gap.instance = static_cast<std::size_t>(rng.uniformInt(0, n - 1));
        gap.firstSample =
            static_cast<std::size_t>(rng.uniformInt(0, len - 1));
        gap.length = std::min(drawLength(rng, profile.meanGapSamples),
                              shape.samplesPerTrace - gap.firstSample);
        plan.gaps_.push_back(gap);
        scheduled += gap.length;
    }

    // Per-instance faults: one Bernoulli draw per instance and fault
    // kind, in instance order, so the schedule is stable under any
    // iteration of the plan.
    for (std::size_t i = 0; i < shape.instances; ++i) {
        if (rng.chance(profile.stuckSensorRate)) {
            StuckSensor stuck;
            stuck.instance = i;
            stuck.firstSample =
                static_cast<std::size_t>(rng.uniformInt(0, len - 1));
            stuck.length =
                std::min(drawLength(rng, profile.meanStuckSamples),
                         shape.samplesPerTrace - stuck.firstSample);
            plan.stuck_.push_back(stuck);
        }
        if (rng.chance(profile.clockSkewRate) &&
            profile.maxSkewSamples > 0) {
            ClockSkew skew;
            skew.instance = i;
            skew.offsetSamples = static_cast<int>(rng.uniformInt(
                -profile.maxSkewSamples, profile.maxSkewSamples));
            if (skew.offsetSamples != 0)
                plan.skews_.push_back(skew);
        }
        if (rng.chance(profile.traceLossRate))
            plan.losses_.push_back(TraceLoss{i});
    }

    // Power events.
    for (int e = 0; e < profile.breakerTrips; ++e) {
        PowerEvent ev;
        ev.kind = PowerEventKind::BreakerTrip;
        ev.nodeOrdinal = static_cast<std::size_t>(
            rng.uniformInt(0, std::numeric_limits<std::int64_t>::max()));
        ev.atSample = static_cast<std::size_t>(rng.uniformInt(0, len - 1));
        ev.durationSamples =
            std::min(drawLength(rng, profile.meanTripSamples),
                     shape.samplesPerTrace - ev.atSample);
        plan.events_.push_back(ev);
    }
    for (int e = 0; e < profile.deratedNodes; ++e) {
        PowerEvent ev;
        ev.kind = PowerEventKind::Derate;
        ev.nodeOrdinal = static_cast<std::size_t>(
            rng.uniformInt(0, std::numeric_limits<std::int64_t>::max()));
        ev.atSample = static_cast<std::size_t>(rng.uniformInt(0, len - 1));
        ev.factor = profile.derateFactor;
        plan.events_.push_back(ev);
    }
    return plan;
}

std::size_t
FaultPlan::scheduledGapSamples() const
{
    std::size_t total = 0;
    for (const auto &gap : gaps_)
        total += gap.length;
    return total;
}

std::uint64_t
FaultPlan::fingerprint() const
{
    std::uint64_t h = 0xcbf29ce484222325ULL; // FNV offset basis.
    h = hashU64(h, seed_);
    h = hashU64(h, shape_.instances);
    h = hashU64(h, shape_.samplesPerTrace);
    h = fnv1a(h, profile_.name.data(), profile_.name.size());
    for (const auto &g : gaps_) {
        h = hashU64(h, g.instance);
        h = hashU64(h, g.firstSample);
        h = hashU64(h, g.length);
    }
    for (const auto &s : stuck_) {
        h = hashU64(h, s.instance);
        h = hashU64(h, s.firstSample);
        h = hashU64(h, s.length);
    }
    for (const auto &s : skews_) {
        h = hashU64(h, s.instance);
        h = hashU64(h, static_cast<std::uint64_t>(
                           static_cast<std::int64_t>(s.offsetSamples)));
    }
    for (const auto &l : losses_)
        h = hashU64(h, l.instance);
    for (const auto &e : events_) {
        h = hashU64(h, static_cast<std::uint64_t>(e.kind));
        h = hashU64(h, e.nodeOrdinal);
        h = hashU64(h, e.atSample);
        h = hashU64(h, e.durationSamples);
        h = hashDouble(h, e.factor);
    }
    return h;
}

FaultPlanSpec
parseFaultPlanSpec(const std::string &text)
{
    SOSIM_REQUIRE(!text.empty(), "--fault-plan: empty spec");
    FaultPlanSpec spec;
    const auto colon = text.find(':');
    const std::string seed_text = text.substr(0, colon);
    try {
        std::size_t used = 0;
        spec.seed = std::stoull(seed_text, &used);
        SOSIM_REQUIRE(used == seed_text.size(),
                      "--fault-plan: seed '" + seed_text +
                          "' is not a number");
    } catch (const util::FatalError &) {
        throw;
    } catch (const std::exception &) {
        SOSIM_REQUIRE(false, "--fault-plan: seed '" + seed_text +
                                 "' is not a number");
    }
    if (colon != std::string::npos) {
        spec.profile = text.substr(colon + 1);
        faultProfile(spec.profile); // Validate the name eagerly.
    }
    return spec;
}

} // namespace sosim::fault
