#include "inject.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "graph/graph.h"
#include "obs/obs.h"
#include "util/error.h"

namespace sosim::fault {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

void
requireShape(const std::vector<trace::TimeSeries> &traces,
             const FaultPlan &plan, const char *what)
{
    // A plan built for the wildcard shape {0, 0} schedules no events
    // and composes with a population of any shape — the pipeline feeds
    // its always-wired inject node such a plan when unfaulted, so
    // what-if overlays may swap in differently-shaped populations.  A
    // plan built for a concrete shape still validates even if it
    // happened to schedule nothing.
    if (plan.shape().instances == 0 && plan.shape().samplesPerTrace == 0)
        return;
    SOSIM_REQUIRE(traces.size() == plan.shape().instances, what);
    for (const auto &t : traces)
        SOSIM_REQUIRE(t.size() == plan.shape().samplesPerTrace, what);
}

/**
 * Storage-agnostic core of injectTraceFaults: `row(i)` yields the
 * mutable sample pointer of instance i's trace of `n` samples.  Shared
 * by the TimeSeries-vector and TraceArena entry points, which differ
 * only in how rows are stored.
 */
template <typename RowFn>
InjectionReport
injectTraceFaultRows(std::size_t n, RowFn row, const FaultPlan &plan)
{
    InjectionReport report;

    // fingerprint() walks the whole plan, so it is hashed once per pass
    // and only when the recorder is live — recomputing it per injected
    // fault would make event emission O(plan) each and the instrumented
    // run quadratic in the fault count.
    const bool recording =
        SOSIM_OBS_ENABLED != 0 && obs::EventRecorder::instance().enabled();
    const std::uint64_t plan_fp = recording ? plan.fingerprint() : 0;
    (void)plan_fp; // Only read by the events when obs is compiled on.

    // 1. Clock skew: rotate the week (the lost tail wraps around, which
    // is the right model for periodic weekly traces).
    for (const auto &skew : plan.clockSkews()) {
        double *ts = row(skew.instance);
        const auto len = static_cast<long>(n);
        long shift = skew.offsetSamples % len;
        if (shift < 0)
            shift += len;
        if (shift == 0)
            continue;
        std::vector<double> rotated(n);
        for (long i = 0; i < len; ++i)
            rotated[static_cast<std::size_t>((i + shift) % len)] =
                ts[static_cast<std::size_t>(i)];
        std::copy(rotated.begin(), rotated.end(), ts);
        ++report.tracesSkewed;
        SOSIM_EVENT(.kind = obs::EventKind::FaultInject,
                    .code = static_cast<std::uint32_t>(
                        obs::FaultEventCode::ClockSkew),
                    .a = skew.instance,
                    .b = static_cast<std::uint64_t>(skew.offsetSamples),
                    .d = plan_fp);
    }

    // Stuck windows and gaps are the high-volume fault classes (a
    // harsh plan schedules tens of thousands), so their events are
    // coalesced to one per touched instance per application: the
    // monitor acts on per-instance validity, not individual gaps, and
    // per-gap journal rows would dominate the recorder's overhead
    // budget and drown `sosim explain` in repetition.  Tally slot 0
    // counts faults, slot 1 counts affected samples.
    std::vector<std::array<std::uint64_t, 2>> stuck_tally;
    std::vector<std::array<std::uint64_t, 2>> gap_tally;
    if (recording) {
        stuck_tally.assign(plan.shape().instances, {0, 0});
        gap_tally.assign(plan.shape().instances, {0, 0});
    }

    // 2. Stuck-at windows: the reading at the window start repeats.
    for (const auto &stuck : plan.stuckSensors()) {
        double *ts = row(stuck.instance);
        if (stuck.length == 0)
            continue;
        const double held = ts[stuck.firstSample];
        for (std::size_t i = 1; i < stuck.length; ++i)
            ts[stuck.firstSample + i] = held;
        report.samplesStuck += stuck.length - 1;
        if (recording) {
            ++stuck_tally[stuck.instance][0];
            stuck_tally[stuck.instance][1] += stuck.length - 1;
        }
    }

    // 3. Dropout gaps to NaN (already-NaN samples are not recounted, so
    // overlapping gaps report the true damage).
    for (const auto &gap : plan.gaps()) {
        double *ts = row(gap.instance);
        std::uint64_t dropped = 0;
        for (std::size_t i = 0; i < gap.length; ++i) {
            double &sample = ts[gap.firstSample + i];
            if (!std::isnan(sample)) {
                sample = kNaN;
                ++dropped;
            }
        }
        report.samplesDropped += dropped;
        if (recording) {
            ++gap_tally[gap.instance][0];
            gap_tally[gap.instance][1] += dropped;
        }
    }

    for (std::size_t i = 0; i < stuck_tally.size(); ++i)
        if (stuck_tally[i][0] > 0)
            SOSIM_EVENT(.kind = obs::EventKind::FaultInject,
                        .code = static_cast<std::uint32_t>(
                            obs::FaultEventCode::StuckSensor),
                        .a = i, .b = stuck_tally[i][0],
                        .c = stuck_tally[i][1], .d = plan_fp);
    for (std::size_t i = 0; i < gap_tally.size(); ++i)
        if (gap_tally[i][0] > 0)
            SOSIM_EVENT(.kind = obs::EventKind::FaultInject,
                        .code = static_cast<std::uint32_t>(
                            obs::FaultEventCode::Gap),
                        .a = i, .b = gap_tally[i][0],
                        .c = gap_tally[i][1], .d = plan_fp);

    // 4. Whole-trace losses.
    for (const auto &loss : plan.traceLosses()) {
        double *ts = row(loss.instance);
        for (std::size_t i = 0; i < n; ++i) {
            if (!std::isnan(ts[i])) {
                ts[i] = kNaN;
                ++report.samplesDropped;
            }
        }
        ++report.tracesLost;
        SOSIM_EVENT(.kind = obs::EventKind::FaultInject,
                    .code = static_cast<std::uint32_t>(
                        obs::FaultEventCode::TraceLoss),
                    .a = loss.instance, .d = plan_fp);
    }

    SOSIM_COUNT_ADD("fault.samples_dropped", report.samplesDropped);
    SOSIM_COUNT_ADD("fault.samples_stuck", report.samplesStuck);
    SOSIM_COUNT_ADD("fault.traces_lost", report.tracesLost);
    SOSIM_COUNT_ADD("fault.traces_skewed", report.tracesSkewed);
    return report;
}

} // namespace

InjectedTraces
injectedCopy(std::vector<trace::TimeSeries> traces, const FaultPlan &plan)
{
    SOSIM_SPAN("fault.inject_traces");
    requireShape(traces, plan,
                 "injectedCopy: traces do not match the plan shape");
    InjectedTraces out;
    out.traces = std::move(traces);
    // The mutable element access invalidates each touched series' stats.
    out.report = injectTraceFaultRows(
        plan.shape().samplesPerTrace,
        [&](std::size_t i) { return &out.traces[i][0]; }, plan);
    return out;
}

InjectionReport
injectTraceFaults(std::vector<trace::TimeSeries> &traces,
                  const FaultPlan &plan)
{
    // One-node graph around the functional form: the input is a nonce-
    // fingerprinted pointer to the caller's population (no hashing, no
    // extra copy beyond injectedCopy's by-value parameter), and the op
    // body is the same injectedCopy the pipeline's InjectFaultsOp runs.
    graph::OpGraph g;
    const auto in = g.input("traces", graph::Value::ofNonce(&traces));
    const auto op = g.op(
        "fault.inject", {in}, plan.fingerprint(),
        [&plan](const std::vector<graph::Value> &ins) {
            auto *src = ins[0].as<std::vector<trace::TimeSeries> *>();
            return graph::Value::ofNonce(injectedCopy(*src, plan));
        });
    const auto &result = g.eval(op).as<InjectedTraces>();
    traces = result.traces;
    return result.report;
}

InjectionReport
injectTraceFaults(trace::TraceArena &arena, const FaultPlan &plan)
{
    SOSIM_SPAN("fault.inject_traces");
    SOSIM_REQUIRE(arena.size() == plan.shape().instances &&
                      arena.samplesPerTrace() ==
                          plan.shape().samplesPerTrace,
                  "injectTraceFaults: arena does not match the plan shape");
    return injectTraceFaultRows(
        arena.samplesPerTrace(),
        [&](std::size_t i) { return arena.mutableRow(i); }, plan);
}

InjectionReport
injectBreakerTrips(std::vector<trace::TimeSeries> &traces,
                   const power::PowerTree &tree,
                   const power::Assignment &assignment,
                   const FaultPlan &plan)
{
    SOSIM_SPAN("fault.inject_breaker_trips");
    requireShape(traces, plan,
                 "injectBreakerTrips: traces do not match the plan shape");
    SOSIM_REQUIRE(assignment.size() == traces.size(),
                  "injectBreakerTrips: assignment does not cover the "
                  "trace population");
    InjectionReport report;
    // Trips target racks that actually serve load: resolving the
    // ordinal over occupied racks only keeps sparse topologies (few
    // instances, many racks) from wasting every trip on an empty rack.
    std::vector<power::NodeId> occupied;
    for (const auto rack : tree.racks())
        if (std::find(assignment.begin(), assignment.end(), rack) !=
            assignment.end())
            occupied.push_back(rack);
    if (occupied.empty())
        return report;
    // Hashed once, not per trip — see injectTraceFaultRows.
    const std::uint64_t plan_fp =
        obs::EventRecorder::instance().enabled() ? plan.fingerprint() : 0;
    (void)plan_fp;
    std::vector<bool> hit(traces.size(), false);
    for (const auto &event : plan.powerEvents()) {
        if (event.kind != PowerEventKind::BreakerTrip)
            continue;
        const power::NodeId rack =
            occupied[event.nodeOrdinal % occupied.size()];
        SOSIM_EVENT(.kind = obs::EventKind::FaultInject,
                    .code = static_cast<std::uint32_t>(
                        obs::FaultEventCode::BreakerTrip),
                    .a = rack, .b = event.atSample,
                    .c = event.durationSamples,
                    .d = plan_fp);
        for (std::size_t i = 0; i < assignment.size(); ++i) {
            if (assignment[i] != rack)
                continue;
            auto &ts = traces[i];
            for (std::size_t s = 0; s < event.durationSamples; ++s)
                ts[event.atSample + s] = 0.0;
            report.blackoutSamples += event.durationSamples;
            if (!hit[i]) {
                hit[i] = true;
                ++report.instancesBlackedOut;
            }
        }
    }
    SOSIM_COUNT_ADD("fault.blackout_samples", report.blackoutSamples);
    SOSIM_COUNT_ADD("fault.instances_blacked_out",
                    report.instancesBlackedOut);
    return report;
}

std::vector<power::NodeId>
applyDerating(power::PowerTree &tree, const FaultPlan &plan,
              power::Level level)
{
    std::vector<power::NodeId> derated;
    const auto &nodes = tree.nodesAtLevel(level);
    if (nodes.empty())
        return derated;
    // Hashed once, not per derate — see injectTraceFaultRows.
    const std::uint64_t plan_fp =
        obs::EventRecorder::instance().enabled() ? plan.fingerprint() : 0;
    (void)plan_fp;
    for (const auto &event : plan.powerEvents()) {
        if (event.kind != PowerEventKind::Derate)
            continue;
        const power::NodeId id = nodes[event.nodeOrdinal % nodes.size()];
        const double budget = tree.node(id).budgetWatts;
        if (budget <= 0.0)
            continue; // Nothing provisioned, nothing to derate.
        tree.setBudget(id, budget * event.factor);
        derated.push_back(id);
        SOSIM_EVENT(.kind = obs::EventKind::FaultInject,
                    .code = static_cast<std::uint32_t>(
                        obs::FaultEventCode::Derate),
                    .a = id, .d = plan_fp,
                    .x = event.factor);
    }
    SOSIM_COUNT_ADD("fault.nodes_derated", derated.size());
    return derated;
}

} // namespace sosim::fault
