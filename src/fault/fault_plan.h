#ifndef SOSIM_FAULT_FAULT_PLAN_H
#define SOSIM_FAULT_FAULT_PLAN_H

/**
 * @file
 * Deterministic fault scheduling.
 *
 * The paper's pipeline assumes clean 1-sample/min traces and a static
 * power tree; section 3.3 motivates week-averaging precisely because
 * production telemetry has "significant unusual short-term variations".
 * A FaultPlan makes those variations first-class and reproducible: it is
 * a pure function of (seed, profile, trace shape) — like util::Rng, two
 * builds with equal inputs yield byte-identical schedules — that decides
 * *what* goes wrong and *when*:
 *
 *   - sample dropout: runs of NaN samples in an instance trace,
 *   - stuck-at sensors: a window where the meter repeats one reading,
 *   - clock skew: an instance's trace rotated by a few samples,
 *   - whole-instance trace loss: the collection plane lost the host,
 *   - power events: breaker trips and node derating at a timestep.
 *
 * The plan only schedules; src/fault/inject.h applies it to traces and
 * power trees, and src/trace/repair.h is the recovery side.  Keeping
 * scheduling separate from application means a plan can be fingerprinted
 * and compared across runs (the determinism ctest does exactly that)
 * and the same plan can degrade both the training and the evaluation
 * copy of a datacenter.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace sosim::fault {

/** Fault intensity knobs; preset instances come from faultProfile(). */
struct FaultProfile {
    /** Profile name as parsed/printed ("none", "mild", "harsh", ...). */
    std::string name = "custom";
    /** Target fraction of all samples lost to dropout gaps, in [0, 1). */
    double sampleLossRate = 0.0;
    /** Mean dropout gap length in samples (>= 1). */
    double meanGapSamples = 6.0;
    /** Fraction of instances that get one stuck-at window. */
    double stuckSensorRate = 0.0;
    /** Mean stuck-at window length in samples (>= 1). */
    double meanStuckSamples = 24.0;
    /** Fraction of instances whose trace is rotated by clock skew. */
    double clockSkewRate = 0.0;
    /** Maximum skew magnitude in samples (either direction). */
    int maxSkewSamples = 3;
    /** Fraction of instances whose whole trace is lost (all-NaN). */
    double traceLossRate = 0.0;
    /** Number of breaker-trip events scheduled on the power tree. */
    int breakerTrips = 0;
    /** Mean blackout duration of a breaker trip, in samples (>= 1). */
    double meanTripSamples = 12.0;
    /** Number of node-derating events scheduled on the power tree. */
    int deratedNodes = 0;
    /** Budget multiplier applied by a derating event, in (0, 1]. */
    double derateFactor = 0.85;
};

/**
 * Named preset profiles:
 *   - "none":  no faults (useful as an ablation baseline),
 *   - "mild":  ~1% sample loss, occasional stuck sensor, no power events,
 *   - "harsh": ~5% sample loss, stuck sensors, skew, one lost trace per
 *              ~50 instances, one breaker trip and one derated node.
 * Fatal on an unknown name.
 */
FaultProfile faultProfile(const std::string &name);

/** A run of dropped (NaN) samples in one instance trace. */
struct SampleGap {
    std::size_t instance = 0;
    std::size_t firstSample = 0;
    std::size_t length = 0;
};

/** A window where one instance's sensor repeats a single reading. */
struct StuckSensor {
    std::size_t instance = 0;
    std::size_t firstSample = 0;
    std::size_t length = 0;
};

/** A per-instance clock skew: the trace is rotated by offsetSamples. */
struct ClockSkew {
    std::size_t instance = 0;
    /** Positive = the instance reports late (samples shift right). */
    int offsetSamples = 0;
};

/** Whole-trace loss of one instance (every sample becomes NaN). */
struct TraceLoss {
    std::size_t instance = 0;
};

/** What a power event does to its node. */
enum class PowerEventKind {
    /** The node's breaker opens: its subtree blacks out for a while. */
    BreakerTrip,
    /** The node's budget is derated by `factor` (maintenance, thermal). */
    Derate,
};

/**
 * A scheduled power-tree event.  The plan does not know the tree, so the
 * target is an ordinal that injectors resolve modulo the relevant node
 * list (racks for trips, any budgeted level for derating) — the same
 * plan therefore applies meaningfully to any topology.
 */
struct PowerEvent {
    PowerEventKind kind = PowerEventKind::BreakerTrip;
    /** Resolved as nodeOrdinal % candidate_nodes.size() by injectors. */
    std::size_t nodeOrdinal = 0;
    /** Timestep (sample index) at which the event fires. */
    std::size_t atSample = 0;
    /** Blackout duration in samples (BreakerTrip only). */
    std::size_t durationSamples = 0;
    /** Budget multiplier (Derate only). */
    double factor = 1.0;
};

/** Shape of the trace population a plan is built for. */
struct TraceShape {
    std::size_t instances = 0;
    std::size_t samplesPerTrace = 0;
};

/**
 * A complete, immutable fault schedule.  Build once per experiment;
 * identical (seed, profile, shape) inputs produce byte-identical
 * schedules and therefore identical fingerprints.
 */
class FaultPlan
{
  public:
    /** Schedule faults for a trace population. */
    static FaultPlan build(std::uint64_t seed, const FaultProfile &profile,
                           TraceShape shape);

    std::uint64_t seed() const { return seed_; }
    const FaultProfile &profile() const { return profile_; }
    const TraceShape &shape() const { return shape_; }

    const std::vector<SampleGap> &gaps() const { return gaps_; }
    const std::vector<StuckSensor> &stuckSensors() const { return stuck_; }
    const std::vector<ClockSkew> &clockSkews() const { return skews_; }
    const std::vector<TraceLoss> &traceLosses() const { return losses_; }
    const std::vector<PowerEvent> &powerEvents() const { return events_; }

    /** Scheduled dropout samples (sum of gap lengths, post-clipping). */
    std::size_t scheduledGapSamples() const;

    /**
     * FNV-1a hash over the full schedule (every event's every field).
     * Two plans are byte-identical iff their fingerprints match — this
     * is what the determinism ctest pins.
     */
    std::uint64_t fingerprint() const;

    /** True when the plan schedules nothing at all. */
    bool empty() const
    {
        return gaps_.empty() && stuck_.empty() && skews_.empty() &&
               losses_.empty() && events_.empty();
    }

  private:
    std::uint64_t seed_ = 0;
    FaultProfile profile_;
    TraceShape shape_;
    std::vector<SampleGap> gaps_;
    std::vector<StuckSensor> stuck_;
    std::vector<ClockSkew> skews_;
    std::vector<TraceLoss> losses_;
    std::vector<PowerEvent> events_;
};

/** Parsed form of the CLI's `--fault-plan seed[:profile]` argument. */
struct FaultPlanSpec {
    std::uint64_t seed = 0;
    /** Profile name; defaults to "harsh" when omitted. */
    std::string profile = "harsh";
};

/**
 * Parse "seed" or "seed:profile" (e.g. "7", "7:mild").  Fatal on a
 * non-numeric seed or an unknown profile name.
 */
FaultPlanSpec parseFaultPlanSpec(const std::string &text);

} // namespace sosim::fault

#endif // SOSIM_FAULT_FAULT_PLAN_H
