#ifndef SOSIM_SERVE_RING_H
#define SOSIM_SERVE_RING_H

/**
 * @file
 * Windowed streaming trace store: the ingestion half of the serve layer.
 *
 * Batch mode loads a whole week of traces at once; a serving system sees
 * one sample per instance per interval, arriving late, duplicated, or
 * not at all.  StreamRing turns the PR5 TraceArena into a ring buffer
 * over the most recent `window` ticks: slot = tick % window, so the
 * arena never reallocates and a snapshot of the trailing window is one
 * pass over the rows.
 *
 * Robustness contract (DESIGN.md section 14): ingest() never aborts.
 * Every sample is classified — accepted (on the frontier or late but
 * inside the window) or rejected with a reason (stale, future,
 * duplicate, non-finite, negative, unknown instance) — and rejects are
 * counted under "serve.ingest.rejected_*" plus kept in a small
 * quarantine ring for inspection.  A silent sensor simply leaves NaN
 * slots behind, which the epoch snapshot hands to the monitor's
 * degraded-data path (trace/repair.h) exactly like the batch pipeline.
 *
 * Incremental stats: per-instance running window sum / valid count are
 * maintained O(1) on every fill and eviction, and the window peak rides
 * a monotonic deque fed by frontier-order fills.  A late (in-window,
 * behind-the-frontier) fill cannot enter the deque without breaking its
 * order invariant, so it sets a dirty flag instead and the next stats()
 * call rescans just that one row — the common streaming path never
 * rescans anything.
 *
 * Threading: concurrent ingest() calls are safe for *distinct*
 * instances (each sample touches only its instance's row, slots and
 * stats; classification counters are atomic and the quarantine ring is
 * mutex-guarded) — the chaos soak fans one tick's fleet out over
 * parallelFor workers.  Concurrent samples for the *same* instance,
 * advanceTo(), stats() and snapshotWindow() must be serialized by the
 * caller, which the epoch-driven serve loop does naturally.
 */

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "trace/arena.h"
#include "trace/time_series.h"

namespace sosim::serve {

/** How ingest() classified one sample. */
enum class IngestStatus : std::uint32_t {
    /** Stored; the sample's tick is the current frontier. */
    Accepted = 0,
    /** Stored, but the tick is behind the frontier (still in window). */
    AcceptedLate = 1,
    /** Rejected: the tick has already left the window. */
    RejectedStale = 2,
    /** Rejected: the tick is ahead of the frontier. */
    RejectedFuture = 3,
    /** Rejected: this (instance, tick) slot was already filled. */
    RejectedDuplicate = 4,
    /** Rejected: watts is NaN or infinite. */
    RejectedNonFinite = 5,
    /** Rejected: watts is negative. */
    RejectedNegative = 6,
    /** Rejected: the instance id is outside the fleet. */
    RejectedUnknownInstance = 7,
};

/** True for the two stored classifications. */
inline bool
ingestAccepted(IngestStatus s)
{
    return s == IngestStatus::Accepted || s == IngestStatus::AcceptedLate;
}

/** Printable classification name ("accepted", "rejected_stale", ...). */
std::string ingestStatusName(IngestStatus s);

/** One telemetry sample on the wire. */
struct Sample {
    /** Global tick index (tick * intervalMinutes = minutes since t0). */
    std::uint64_t tick = 0;
    /** Fleet instance index. */
    std::uint64_t instance = 0;
    /** Measured power draw. */
    double watts = 0.0;
};

/** A rejected sample plus why, as kept in the quarantine ring. */
struct QuarantinedSample {
    Sample sample;
    IngestStatus reason = IngestStatus::RejectedStale;
};

/** Incrementally-maintained summary of one instance's current window. */
struct RunningWindowStats {
    /** Sum of the finite samples in the window. */
    double sum = 0.0;
    /** Largest finite sample in the window (0.0 when none). */
    double peak = 0.0;
    /** Finite samples currently in the window. */
    std::size_t validCount = 0;

    /** Mean of the finite samples (0.0 when none). */
    double mean() const
    {
        return validCount == 0 ? 0.0 : sum / double(validCount);
    }
};

/**
 * A fixed-fleet ring buffer over the trailing `window` ticks of every
 * instance's telemetry, with per-sample validation and incremental
 * per-instance window stats.
 */
class StreamRing
{
  public:
    /** Quarantined rejects kept for inspection (newest wins). */
    static constexpr std::size_t kQuarantineCapacity = 64;

    /**
     * @param instances        Fleet size (instance ids are [0, n)).
     * @param window           Ticks retained per instance (>= 1).
     * @param interval_minutes Minutes between ticks.
     */
    StreamRing(std::size_t instances, std::size_t window,
               int interval_minutes);

    std::size_t instances() const { return instances_; }
    std::size_t window() const { return window_; }
    int intervalMinutes() const { return intervalMinutes_; }

    /**
     * The newest tick the ring accepts samples for.  Slots cover ticks
     * (frontier - window, frontier]; ticks at or below frontier - window
     * are stale, ticks above the frontier are future.
     */
    std::uint64_t frontier() const { return frontier_; }

    /**
     * Classify and (when accepted) store one sample.  Never throws on
     * malformed input — rejection is a return value, a counter and a
     * quarantine entry, and the ring's state is untouched.
     */
    IngestStatus ingest(const Sample &s);

    /**
     * Advance the frontier to `tick` (no-op when not ahead).  Each tick
     * stepped over evicts the slot that leaves the window — its old
     * contribution is removed from the running stats and the slot
     * becomes an empty NaN awaiting that future tick's sample.
     */
    void advanceTo(std::uint64_t tick);

    /**
     * Incremental stats of one instance's current window; equal to a
     * full rescan of the row, resolved O(1) unless a late fill dirtied
     * the row since the last call (then one O(window) rescan).
     */
    const RunningWindowStats &stats(std::size_t instance) const;

    /**
     * Materialize the completed window [frontier - window, frontier) of
     * every instance as owning TimeSeries, oldest sample first, NaN
     * where no sample arrived.  This is the epoch snapshot input: an
     * immutable copy that later ingests cannot touch.
     */
    std::vector<trace::TimeSeries> snapshotWindow() const;

    /**
     * Copy of the recent rejects, oldest first (bounded by
     * kQuarantineCapacity).  Writers must be quiesced for an exact
     * result — same contract as Registry::snapshot().
     */
    std::vector<QuarantinedSample> quarantined() const;

    /** Accepted samples (frontier + late) since construction/restore. */
    std::uint64_t acceptedCount() const;
    /** Late-but-accepted subset of acceptedCount(). */
    std::uint64_t lateCount() const;
    /** Rejected samples of one class. */
    std::uint64_t rejectedCount(IngestStatus reason) const;
    /** All rejected samples. */
    std::uint64_t rejectedTotal() const;

    /**
     * Serialization surface for serve checkpoints: raw slot values and
     * the per-slot fill ticks, row-major [instance][slot], plus the
     * counters.  restoreState() is the exact inverse; the running stats
     * are rebuilt from the restored slots, so a restored ring is
     * indistinguishable from one that streamed the same samples.
     */
    std::vector<double> slotValues() const;
    std::vector<std::uint64_t> slotFillTicks() const;
    std::vector<std::uint64_t> counterValues() const;
    void restoreState(std::uint64_t frontier,
                      const std::vector<double> &slot_values,
                      const std::vector<std::uint64_t> &slot_fill_ticks,
                      const std::vector<std::uint64_t> &counters);

  private:
    /** filledTick_ sentinel: the slot holds no sample. */
    static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

    /** One (tick, value) entry of a peak deque. */
    struct PeakEntry {
        std::uint64_t tick;
        double value;
    };

    /** Mutable per-instance incremental state. */
    struct InstanceState {
        RunningWindowStats stats;
        /** Monotonic (value-decreasing, tick-increasing) max deque fed
         *  by frontier-order fills; invalid while dirty. */
        std::deque<PeakEntry> peaks;
        /** A late fill bypassed the deque; rescan before reading. */
        bool dirty = false;
    };

    double slot(std::size_t instance, std::size_t s) const;
    void rescanRow(std::size_t instance) const;
    IngestStatus reject(const Sample &s, IngestStatus reason);

    std::size_t instances_ = 0;
    std::size_t window_ = 0;
    int intervalMinutes_ = 1;
    std::uint64_t frontier_ = 0;
    /** Row i = instance i's window; slot = tick % window. */
    trace::TraceArena arena_;
    /** Tick each slot currently holds (kEmpty = no sample). */
    std::vector<std::uint64_t> filledTick_;
    /** Lazily-corrected incremental stats (mutable: stats() is const). */
    mutable std::vector<InstanceState> state_;
    mutable std::mutex quarantineMutex_;
    std::deque<QuarantinedSample> quarantine_;
    /** Classification counts indexed by IngestStatus value. */
    std::array<std::atomic<std::uint64_t>, 8> counts_{};
};

} // namespace sosim::serve

#endif // SOSIM_SERVE_RING_H
