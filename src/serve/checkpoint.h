#ifndef SOSIM_SERVE_CHECKPOINT_H
#define SOSIM_SERVE_CHECKPOINT_H

/**
 * @file
 * Fingerprinted epoch checkpoints for the serve layer.
 *
 * The serving loop survives process death by committing its state after
 * every processed epoch.  A checkpoint file is
 *
 *   [magic u64][version u64][shape fp u64][epoch u64]
 *   [payload bytes u64][payload fp u64][payload ...]
 *
 * where the payload fingerprint is FNV-1a over the payload bytes and the
 * shape fingerprint ties the file to the service configuration that
 * wrote it (fleet size, window, epoch length, monitor/remap config,
 * power tree) so a checkpoint can never be restored into a differently
 * shaped service.  Files are written to a temporary name and renamed
 * into place, so a crash mid-write leaves the previous file intact, and
 * two slots (ckpt-a.bin / ckpt-b.bin) alternate by epoch parity, so
 * even a torn rename falls back to the other slot.  restore picks the
 * valid slot with the highest epoch; a corrupt, truncated or
 * wrong-shape file is skipped (and counted), never trusted.
 *
 * The payload itself is opaque here: serve::Service serializes its
 * fields through PayloadWriter/PayloadReader (u64 / double / vectors,
 * doubles bit-exact), which is what makes a restored run replay
 * bit-identically.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace sosim::serve {

/** Little serializer for checkpoint payloads (native-endian, packed). */
class PayloadWriter
{
  public:
    void u64(std::uint64_t v);
    void f64(double v);
    void u64Vector(const std::vector<std::uint64_t> &v);
    void f64Vector(const std::vector<double> &v);

    const std::string &bytes() const { return bytes_; }

  private:
    std::string bytes_;
};

/** Exact inverse of PayloadWriter; fails (returns false) on underrun. */
class PayloadReader
{
  public:
    explicit PayloadReader(const std::string &bytes) : bytes_(bytes) {}

    bool u64(std::uint64_t &v);
    bool f64(double &v);
    bool u64Vector(std::vector<std::uint64_t> &v);
    bool f64Vector(std::vector<double> &v);

    /** True when every payload byte has been consumed. */
    bool exhausted() const { return offset_ == bytes_.size(); }

  private:
    bool raw(void *out, std::size_t n);

    const std::string &bytes_;
    std::size_t offset_ = 0;
};

/** A validated checkpoint read back from disk. */
struct Checkpoint {
    /** Shape fingerprint of the service that wrote it. */
    std::uint64_t shapeFingerprint = 0;
    /** Last committed epoch. */
    std::uint64_t epoch = 0;
    /** Opaque service payload. */
    std::string payload;
};

/** Path of one of the two alternating slots (0 or 1) under `dir`. */
std::string checkpointSlotPath(const std::string &dir, int slot);

/**
 * Commit a checkpoint to slot (epoch % 2) under `dir`: serialize the
 * header + payload to "<slot>.tmp", then rename over the slot file.
 * Returns false (with *error set) on I/O failure; never throws.
 */
bool writeCheckpointFile(const std::string &dir, std::uint64_t shape_fp,
                         std::uint64_t epoch, const std::string &payload,
                         std::string *error);

/**
 * Read and validate one slot file.  Returns std::nullopt when the file
 * is missing, truncated, corrupt (fingerprint mismatch), from a
 * different format version, or from a differently-shaped service; a
 * diagnosis lands in *error when given.
 */
std::optional<Checkpoint> readCheckpointFile(const std::string &path,
                                             std::uint64_t expected_shape_fp,
                                             std::string *error);

/**
 * The newest valid checkpoint under `dir`: both slots are read, invalid
 * ones are skipped (counted under "serve.checkpoint.corrupt"), and the
 * valid one with the highest epoch wins.  std::nullopt when neither
 * slot is usable.
 */
std::optional<Checkpoint> latestCheckpoint(const std::string &dir,
                                           std::uint64_t expected_shape_fp);

} // namespace sosim::serve

#endif // SOSIM_SERVE_CHECKPOINT_H
