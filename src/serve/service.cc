#include "service.h"

#include <chrono>
#include <cstring>
#include <utility>

#include "core/fingerprints.h"
#include "graph/graph.h"
#include "obs/obs.h"
#include "serve/checkpoint.h"
#include "trace/repair.h"
#include "util/error.h"

namespace sosim::serve {

namespace {

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

} // namespace

Service::Service(const power::PowerTree &tree,
                 std::vector<std::size_t> service_of,
                 power::Assignment initial, int interval_minutes,
                 ServeConfig config)
    : tree_(tree), serviceOf_(std::move(service_of)),
      config_(std::move(config)),
      ring_(serviceOf_.size(), config_.window, interval_minutes),
      monitor_(tree, config_.monitor),
      assignment_(std::move(initial)), digest_(graph::kFnvOffset)
{
    SOSIM_REQUIRE(config_.epochTicks >= 1,
                  "serve::Service: epochTicks must be >= 1");
    SOSIM_REQUIRE(config_.maxEpochQueue >= 1,
                  "serve::Service: maxEpochQueue must be >= 1");
    SOSIM_REQUIRE(assignment_.size() == serviceOf_.size(),
                  "serve::Service: assignment / service_of size mismatch");
    shapeFp_ = computeShapeFingerprint();
}

void
Service::advanceTo(std::uint64_t tick)
{
    for (std::uint64_t next = ring_.frontier() + 1; next <= tick;
         ++next) {
        if (next % config_.epochTicks == 0) {
            // Materialize BEFORE stepping the ring into the boundary
            // tick: the snapshot must cover only fully-fed ticks, not
            // the about-to-be-cleared slot of tick `next`.
            EpochSnapshot snap;
            snap.epoch = next / config_.epochTicks;
            snap.lastTick = ring_.frontier();
            snap.traces = ring_.snapshotWindow();
            queue_.push_back(std::move(snap));
            if (queue_.size() > config_.maxEpochQueue) {
                const std::uint64_t shed_epoch = queue_.front().epoch;
                queue_.pop_front();
                ++shed_;
                SOSIM_COUNT("serve.epoch.shed");
                SOSIM_EVENT(.kind = obs::EventKind::EpochShed,
                            .a = shed_epoch, .b = queue_.size());
            }
            SOSIM_GAUGE_SET("serve.epoch.queue_depth",
                            static_cast<double>(queue_.size()));
        }
        ring_.advanceTo(next);
    }
}

std::vector<EpochResult>
Service::processReadyEpochs()
{
    std::vector<EpochResult> results;
    while (!queue_.empty()) {
        EpochSnapshot snap = std::move(queue_.front());
        queue_.pop_front();
        results.push_back(processEpoch(snap));
    }
    SOSIM_GAUGE_SET("serve.epoch.queue_depth", 0.0);
    return results;
}

EpochResult
Service::processEpoch(const EpochSnapshot &snapshot)
{
    SOSIM_SPAN("serve.process_epoch");
    const auto t0 = std::chrono::steady_clock::now();
    const core::MonitorMeasurement m = core::measureWeek(
        tree_, config_.monitor, snapshot.traces, assignment_);
    const double eval_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    EpochResult r;
    r.epoch = snapshot.epoch;
    r.lastTick = snapshot.lastTick;
    r.observation = monitor_.ingest(m, eval_seconds);

    // Unlike the batch pipeline (which only records recommendations),
    // the serving loop acts on them: a Remap refines the live
    // assignment, a Replace re-derives it.  Both run on a repaired copy
    // of the snapshot — the remap/placement engines need gap-free
    // traces — with per-instance pre-repair validity gating swap
    // candidacy, mirroring the monitor's own degraded-data discipline.
    if (r.observation.action == core::MonitorAction::Remap) {
        const trace::RepairedTraces repaired = trace::repairedCopy(
            snapshot.traces, config_.monitor.repairPolicy);
        const auto swaps =
            core::Remapper(tree_, config_.remap)
                .refineInPlace(assignment_, repaired.traces,
                               &repaired.summary.validBefore);
        r.swaps = swaps.size();
        if (!swaps.empty())
            monitor_.placementUpdated();
    } else if (r.observation.action == core::MonitorAction::Replace) {
        const trace::RepairedTraces repaired = trace::repairedCopy(
            snapshot.traces, config_.monitor.repairPolicy);
        assignment_ = core::PlacementEngine(tree_, config_.placement)
                          .place(repaired.traces, serviceOf_);
        monitor_.placementUpdated();
        r.replaced = true;
    }

    // The replay-equality digest: every observable outcome of the epoch
    // except wall-clock time (evalSeconds is deliberately excluded so
    // restored runs match unbroken ones bit for bit).
    digest_ = graph::hashCombine(digest_, r.epoch);
    digest_ = graph::hashCombine(
        digest_, doubleBits(r.observation.fragmentationRatio));
    digest_ = graph::hashCombine(
        digest_, static_cast<std::uint64_t>(r.observation.action));
    digest_ = graph::hashCombine(digest_,
                                 r.observation.degradedData ? 1u : 0u);
    digest_ = graph::hashCombine(digest_,
                                 r.observation.excludedInstances);
    digest_ = graph::hashCombine(digest_, r.observation.repairedSamples);
    digest_ = graph::hashCombine(digest_, r.swaps);
    digest_ =
        graph::hashCombine(digest_, core::fingerprintAssignment(
                                        assignment_));

    committedEpoch_ = r.epoch;
    SOSIM_COUNT("serve.epoch.committed");
    SOSIM_OBSERVE("serve.epoch.eval_seconds", eval_seconds);
    SOSIM_EVENT(.kind = obs::EventKind::EpochCommit,
                .code = r.observation.degradedData ? 1u : 0u,
                .label = core::monitorActionName(r.observation.action),
                .a = r.epoch, .b = r.lastTick,
                .c = static_cast<std::uint64_t>(r.observation.action),
                .d = r.swaps, .x = r.observation.fragmentationRatio);

    if (!config_.checkpointDir.empty())
        writeCheckpoint();
    return r;
}

void
Service::writeCheckpoint()
{
    PayloadWriter w;
    w.u64(ring_.frontier());
    w.u64(committedEpoch_);
    w.u64(digest_);
    w.u64(shed_);
    w.f64Vector(ring_.slotValues());
    w.u64Vector(ring_.slotFillTicks());
    w.u64Vector(ring_.counterValues());

    std::vector<std::uint64_t> assign(assignment_.size());
    for (std::size_t i = 0; i < assignment_.size(); ++i)
        assign[i] = static_cast<std::uint64_t>(assignment_[i]);
    w.u64Vector(assign);

    const auto baseline = monitor_.baselineState();
    w.f64Vector(baseline.window);
    w.u64(baseline.weekCounter);

    w.u64(queue_.size());
    for (const EpochSnapshot &snap : queue_) {
        w.u64(snap.epoch);
        w.u64(snap.lastTick);
        std::vector<double> flat;
        flat.reserve(snap.traces.size() * config_.window);
        for (const auto &ts : snap.traces)
            flat.insert(flat.end(), ts.samples().begin(),
                        ts.samples().end());
        w.f64Vector(flat);
    }

    std::string error;
    if (!writeCheckpointFile(config_.checkpointDir, shapeFp_,
                             committedEpoch_, w.bytes(), &error))
        // A failed commit is survivable — the previous slot stays valid
        // and restore simply rewinds one epoch further.
        SOSIM_COUNT("serve.checkpoint.write_failed");
}

bool
Service::restoreLatest()
{
    if (config_.checkpointDir.empty())
        return false;
    const auto ckpt = latestCheckpoint(config_.checkpointDir, shapeFp_);
    if (!ckpt)
        return false;

    // Parse everything into locals first; any malformed field leaves
    // the service untouched.
    PayloadReader r(ckpt->payload);
    std::uint64_t frontier = 0, committed = 0, digest = 0, shed = 0;
    std::vector<double> slots;
    std::vector<std::uint64_t> fills, counters, assign;
    std::vector<double> baseline_window;
    std::uint64_t week_counter = 0, queue_count = 0;
    if (!r.u64(frontier) || !r.u64(committed) || !r.u64(digest) ||
        !r.u64(shed) || !r.f64Vector(slots) || !r.u64Vector(fills) ||
        !r.u64Vector(counters) || !r.u64Vector(assign) ||
        !r.f64Vector(baseline_window) || !r.u64(week_counter) ||
        !r.u64(queue_count))
        return false;
    const std::size_t cells = ring_.instances() * ring_.window();
    if (slots.size() != cells || fills.size() != cells ||
        assign.size() != serviceOf_.size() ||
        queue_count > config_.maxEpochQueue)
        return false;
    std::deque<EpochSnapshot> queue;
    for (std::uint64_t i = 0; i < queue_count; ++i) {
        EpochSnapshot snap;
        std::vector<double> flat;
        if (!r.u64(snap.epoch) || !r.u64(snap.lastTick) ||
            !r.f64Vector(flat) || flat.size() != cells)
            return false;
        snap.traces.reserve(ring_.instances());
        for (std::size_t inst = 0; inst < ring_.instances(); ++inst) {
            const auto begin =
                flat.begin() +
                static_cast<std::ptrdiff_t>(inst * ring_.window());
            snap.traces.emplace_back(
                std::vector<double>(
                    begin,
                    begin + static_cast<std::ptrdiff_t>(ring_.window())),
                ring_.intervalMinutes());
        }
        queue.push_back(std::move(snap));
    }
    if (!r.exhausted())
        return false;

    ring_.restoreState(frontier, slots, fills, counters);
    for (std::size_t i = 0; i < assign.size(); ++i)
        assignment_[i] = static_cast<power::NodeId>(assign[i]);
    core::FragmentationMonitor::BaselineState baseline;
    baseline.window = std::move(baseline_window);
    baseline.weekCounter = static_cast<std::size_t>(week_counter);
    monitor_.restoreBaselineState(baseline);
    digest_ = digest;
    committedEpoch_ = committed;
    shed_ = shed;
    queue_ = std::move(queue);

    SOSIM_COUNT("serve.checkpoint.restored");
    SOSIM_EVENT(.kind = obs::EventKind::CheckpointRestore,
                .a = committed, .b = frontier);
    return true;
}

std::uint64_t
Service::computeShapeFingerprint() const
{
    std::uint64_t h = graph::fingerprintString("serve-shape");
    h = graph::hashCombine(h, ring_.instances());
    h = graph::hashCombine(h, config_.window);
    h = graph::hashCombine(h, config_.epochTicks);
    h = graph::hashCombine(h, config_.maxEpochQueue);
    h = graph::hashCombine(
        h, static_cast<std::uint64_t>(ring_.intervalMinutes()));
    h = graph::hashCombine(
        h, core::fingerprintMonitorMeasureConfig(config_.monitor));
    h = graph::hashCombine(h, config_.monitor.baselineWindowWeeks);
    h = graph::hashCombine(h, doubleBits(config_.monitor.remapThreshold));
    h = graph::hashCombine(h,
                           doubleBits(config_.monitor.replaceThreshold));
    h = graph::hashCombine(
        h, doubleBits(config_.monitor.degradedThresholdFactor));
    h = graph::hashCombine(h, core::fingerprintRemapConfig(config_.remap));
    h = graph::hashCombine(h,
                           core::fingerprintEmbedConfig(config_.placement));
    h = graph::hashCombine(
        h, core::fingerprintDistributeConfig(config_.placement));
    h = graph::hashCombine(h, core::fingerprintTree(tree_));
    h = graph::hashCombine(h, core::fingerprintServices(serviceOf_));
    return h;
}

} // namespace sosim::serve
