#ifndef SOSIM_SERVE_SERVICE_H
#define SOSIM_SERVE_SERVICE_H

/**
 * @file
 * The datacenter as a long-running service: the epoch/snapshot loop
 * that turns the streaming ring into monitor + remapper decisions.
 *
 * Lifecycle (DESIGN.md section 14):
 *
 *   ingest* -> advanceTo(tick) -> [epoch boundary: snapshot enqueued]
 *           -> processReadyEpochs() -> [measure -> judge -> act
 *                                       -> digest -> checkpoint]
 *
 * Every `epochTicks` ticks, advanceTo materializes the trailing window
 * as an immutable snapshot (owning TimeSeries copies, NaN where sensors
 * were silent) into a bounded queue, so scoring always reads a
 * consistent view while new samples keep landing in the ring.  When the
 * decision side falls behind and the queue is full, the *oldest*
 * pending snapshot is shed (freshest data wins) and counted under
 * "serve.epoch.shed" — ingest never blocks and never aborts.
 *
 * processReadyEpochs drains the queue: each snapshot is measured with
 * core::measureWeek (whose degraded-data path handles the NaNs exactly
 * like the batch pipeline), judged by the FragmentationMonitor, and the
 * recommended action is executed — Remap refines the live assignment on
 * a repaired copy with per-instance validity gating, Replace re-derives
 * the placement.  A running FNV digest over every processed epoch's
 * observable outcome (ratio bits, action, degradation tallies, swap
 * count, assignment fingerprint) is the replay-equality witness: an
 * unbroken run and a kill/restore run that processed the same epochs
 * end with bit-identical digests, at any thread count.
 *
 * Crash safety: with a checkpoint directory configured, the service
 * commits its full state (ring, queue, assignment, monitor baseline,
 * digest, counters) after every processed epoch (serve/checkpoint.h);
 * restoreLatest() rewinds a fresh service to the last committed epoch,
 * after which the driver replays the deterministic feed from
 * ring().frontier() + 1.
 */

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/monitor.h"
#include "core/placement.h"
#include "core/remap.h"
#include "power/power_tree.h"
#include "serve/ring.h"

namespace sosim::serve {

/** Serving-loop configuration. */
struct ServeConfig {
    /** Ticks retained per instance (the snapshot length). */
    std::size_t window = 48;
    /** Ticks between epoch snapshots. */
    std::size_t epochTicks = 24;
    /** Pending snapshots kept before shed-oldest kicks in (>= 1). */
    std::size_t maxEpochQueue = 4;
    /** Measurement + judgment knobs (incl. the online repair policy). */
    core::MonitorConfig monitor;
    /** Swap refinement executed on a Remap recommendation. */
    core::RemapConfig remap;
    /** Re-placement executed on a Replace recommendation. */
    core::PlacementConfig placement;
    /** Checkpoint directory; empty disables checkpointing. */
    std::string checkpointDir;
};

/** One pending immutable epoch snapshot. */
struct EpochSnapshot {
    /** 1-based epoch index (boundary tick / epochTicks). */
    std::uint64_t epoch = 0;
    /** Last tick the snapshot covers. */
    std::uint64_t lastTick = 0;
    /** The window, one owning series per instance, NaN = no sample. */
    std::vector<trace::TimeSeries> traces;
};

/** The outcome of one processed epoch. */
struct EpochResult {
    std::uint64_t epoch = 0;
    std::uint64_t lastTick = 0;
    core::MonitorObservation observation;
    /** Swaps accepted by a Remap action. */
    std::size_t swaps = 0;
    /** True when a Replace action re-derived the placement. */
    bool replaced = false;
};

/**
 * The serving loop state: ring + epoch queue + monitor + live
 * assignment + digest + checkpoints.
 */
class Service
{
  public:
    /**
     * @param tree             Power infrastructure (not owned).
     * @param service_of       Service id of every instance (placement
     *                         inputs for Replace actions).
     * @param initial          Starting placement.
     * @param interval_minutes Tick length.
     * @param config           Loop configuration.
     */
    Service(const power::PowerTree &tree,
            std::vector<std::size_t> service_of,
            power::Assignment initial, int interval_minutes,
            ServeConfig config);

    /** Forwarded to StreamRing::ingest (same robustness contract and
     *  the same distinct-instance concurrency contract). */
    IngestStatus ingest(const Sample &s) { return ring_.ingest(s); }

    /**
     * Advance the stream clock; epoch boundaries crossed on the way
     * enqueue snapshots (shedding the oldest when the queue is full).
     * Serialized with ingest by the caller.
     */
    void advanceTo(std::uint64_t tick);

    /** Drain the pending epoch queue; returns the processed results in
     *  epoch order. */
    std::vector<EpochResult> processReadyEpochs();

    const StreamRing &ring() const { return ring_; }
    const power::Assignment &assignment() const { return assignment_; }
    const ServeConfig &config() const { return config_; }

    /** Pending snapshots (backpressure depth). */
    std::size_t queueDepth() const { return queue_.size(); }
    /** Snapshots shed under backpressure since construction/restore. */
    std::uint64_t shedCount() const { return shed_; }
    /** Last epoch processed (0 = none yet). */
    std::uint64_t committedEpoch() const { return committedEpoch_; }

    /** Running replay-equality digest over every processed epoch. */
    std::uint64_t digest() const { return digest_; }

    /** Configuration/topology fingerprint that checkpoint files are
     *  tied to. */
    std::uint64_t shapeFingerprint() const { return shapeFp_; }

    /**
     * Rewind to the newest valid checkpoint in config().checkpointDir.
     * Returns false (leaving the service untouched) when no usable
     * checkpoint exists; on success the driver must replay the feed
     * from ring().frontier() + 1.
     */
    bool restoreLatest();

  private:
    EpochResult processEpoch(const EpochSnapshot &snapshot);
    void writeCheckpoint();
    std::uint64_t computeShapeFingerprint() const;

    const power::PowerTree &tree_;
    std::vector<std::size_t> serviceOf_;
    ServeConfig config_;
    StreamRing ring_;
    core::FragmentationMonitor monitor_;
    power::Assignment assignment_;
    std::deque<EpochSnapshot> queue_;
    std::uint64_t shed_ = 0;
    std::uint64_t committedEpoch_ = 0;
    std::uint64_t digest_;
    std::uint64_t shapeFp_ = 0;
};

} // namespace sosim::serve

#endif // SOSIM_SERVE_SERVICE_H
