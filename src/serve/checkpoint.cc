#include "checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "graph/graph.h"
#include "obs/obs.h"

namespace sosim::serve {

namespace {

/** "SOSIMCKP" as a little-endian u64. */
constexpr std::uint64_t kMagic = 0x504b434d49534f53ull;
constexpr std::uint64_t kVersion = 1;

/** FNV-1a over raw bytes (the payload fingerprint). */
std::uint64_t
fingerprintBytes(const std::string &bytes)
{
    std::uint64_t h = graph::kFnvOffset;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[sizeof(v)];
    std::memcpy(buf, &v, sizeof(v));
    out.append(buf, sizeof(v));
}

bool
fail(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
    return false;
}

} // namespace

void
PayloadWriter::u64(std::uint64_t v)
{
    appendU64(bytes_, v);
}

void
PayloadWriter::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    appendU64(bytes_, bits);
}

void
PayloadWriter::u64Vector(const std::vector<std::uint64_t> &v)
{
    u64(v.size());
    for (const std::uint64_t x : v)
        u64(x);
}

void
PayloadWriter::f64Vector(const std::vector<double> &v)
{
    u64(v.size());
    for (const double x : v)
        f64(x);
}

bool
PayloadReader::raw(void *out, std::size_t n)
{
    if (offset_ + n > bytes_.size())
        return false;
    std::memcpy(out, bytes_.data() + offset_, n);
    offset_ += n;
    return true;
}

bool
PayloadReader::u64(std::uint64_t &v)
{
    return raw(&v, sizeof(v));
}

bool
PayloadReader::f64(double &v)
{
    std::uint64_t bits = 0;
    if (!raw(&bits, sizeof(bits)))
        return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
}

bool
PayloadReader::u64Vector(std::vector<std::uint64_t> &v)
{
    std::uint64_t n = 0;
    if (!u64(n) || n > (bytes_.size() - offset_) / sizeof(std::uint64_t))
        return false;
    v.resize(static_cast<std::size_t>(n));
    for (auto &x : v)
        if (!u64(x))
            return false;
    return true;
}

bool
PayloadReader::f64Vector(std::vector<double> &v)
{
    std::uint64_t n = 0;
    if (!u64(n) || n > (bytes_.size() - offset_) / sizeof(double))
        return false;
    v.resize(static_cast<std::size_t>(n));
    for (auto &x : v)
        if (!f64(x))
            return false;
    return true;
}

std::string
checkpointSlotPath(const std::string &dir, int slot)
{
    return dir + "/ckpt-" + (slot == 0 ? "a" : "b") + ".bin";
}

bool
writeCheckpointFile(const std::string &dir, std::uint64_t shape_fp,
                    std::uint64_t epoch, const std::string &payload,
                    std::string *error)
{
    std::string blob;
    blob.reserve(6 * sizeof(std::uint64_t) + payload.size());
    appendU64(blob, kMagic);
    appendU64(blob, kVersion);
    appendU64(blob, shape_fp);
    appendU64(blob, epoch);
    appendU64(blob, payload.size());
    appendU64(blob, fingerprintBytes(payload));
    blob += payload;

    const int slot = static_cast<int>(epoch % 2);
    const std::string path = checkpointSlotPath(dir, slot);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out.good())
            return fail(error, "cannot open " + tmp);
        out.write(blob.data(),
                  static_cast<std::streamsize>(blob.size()));
        out.flush();
        if (!out.good())
            return fail(error, "short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        return fail(error, "cannot rename " + tmp + " -> " + path);
    SOSIM_COUNT("serve.checkpoint.written");
    SOSIM_EVENT(.kind = obs::EventKind::CheckpointWrite, .a = epoch,
                .b = blob.size(),
                .c = static_cast<std::uint64_t>(slot));
    return true;
}

std::optional<Checkpoint>
readCheckpointFile(const std::string &path,
                   std::uint64_t expected_shape_fp, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
        fail(error, "cannot open " + path);
        return std::nullopt;
    }
    std::string blob((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    auto broken = [&](const std::string &why) {
        fail(error, path + ": " + why);
        SOSIM_COUNT("serve.checkpoint.corrupt");
        return std::nullopt;
    };
    if (blob.size() < 6 * sizeof(std::uint64_t))
        return broken("truncated header");
    std::uint64_t header[6];
    std::memcpy(header, blob.data(), sizeof(header));
    if (header[0] != kMagic)
        return broken("bad magic");
    if (header[1] != kVersion)
        return broken("unsupported version");
    if (header[2] != expected_shape_fp)
        return broken("service shape mismatch");
    const std::uint64_t payload_size = header[4];
    if (blob.size() != 6 * sizeof(std::uint64_t) + payload_size)
        return broken("truncated payload");
    Checkpoint ckpt;
    ckpt.shapeFingerprint = header[2];
    ckpt.epoch = header[3];
    ckpt.payload = blob.substr(6 * sizeof(std::uint64_t));
    if (fingerprintBytes(ckpt.payload) != header[5])
        return broken("payload fingerprint mismatch");
    return ckpt;
}

std::optional<Checkpoint>
latestCheckpoint(const std::string &dir, std::uint64_t expected_shape_fp)
{
    std::optional<Checkpoint> best;
    for (int slot = 0; slot < 2; ++slot) {
        auto ckpt = readCheckpointFile(checkpointSlotPath(dir, slot),
                                       expected_shape_fp, nullptr);
        if (ckpt && (!best || ckpt->epoch > best->epoch))
            best = std::move(ckpt);
    }
    return best;
}

} // namespace sosim::serve
