#include "ring.h"

#include <cmath>
#include <limits>

#include "obs/obs.h"
#include "util/error.h"

namespace sosim::serve {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

} // namespace

std::string
ingestStatusName(IngestStatus s)
{
    switch (s) {
      case IngestStatus::Accepted:
        return "accepted";
      case IngestStatus::AcceptedLate:
        return "accepted_late";
      case IngestStatus::RejectedStale:
        return "rejected_stale";
      case IngestStatus::RejectedFuture:
        return "rejected_future";
      case IngestStatus::RejectedDuplicate:
        return "rejected_duplicate";
      case IngestStatus::RejectedNonFinite:
        return "rejected_nonfinite";
      case IngestStatus::RejectedNegative:
        return "rejected_negative";
      case IngestStatus::RejectedUnknownInstance:
        return "rejected_unknown_instance";
    }
    return "unknown";
}

StreamRing::StreamRing(std::size_t instances, std::size_t window,
                       int interval_minutes)
    : instances_(instances), window_(window),
      intervalMinutes_(interval_minutes),
      arena_(instances, window, interval_minutes),
      filledTick_(instances * window, kEmpty), state_(instances)
{
    SOSIM_REQUIRE(instances > 0, "StreamRing: need at least one instance");
    SOSIM_REQUIRE(window > 0, "StreamRing: window must be >= 1 tick");
    for (std::size_t i = 0; i < instances_; ++i) {
        const trace::TraceId id = arena_.addZeros();
        double *row = arena_.mutableRow(id);
        for (std::size_t s = 0; s < window_; ++s)
            row[s] = kNaN;
    }
}

double
StreamRing::slot(std::size_t instance, std::size_t s) const
{
    return arena_.row(instance)[s];
}

IngestStatus
StreamRing::reject(const Sample &s, IngestStatus reason)
{
    counts_[static_cast<std::size_t>(reason)].fetch_add(
        1, std::memory_order_relaxed);
    switch (reason) {
      case IngestStatus::RejectedStale:
        SOSIM_COUNT("serve.ingest.rejected_stale");
        break;
      case IngestStatus::RejectedFuture:
        SOSIM_COUNT("serve.ingest.rejected_future");
        break;
      case IngestStatus::RejectedDuplicate:
        SOSIM_COUNT("serve.ingest.rejected_duplicate");
        break;
      case IngestStatus::RejectedNonFinite:
        SOSIM_COUNT("serve.ingest.rejected_nonfinite");
        break;
      case IngestStatus::RejectedNegative:
        SOSIM_COUNT("serve.ingest.rejected_negative");
        break;
      case IngestStatus::RejectedUnknownInstance:
        SOSIM_COUNT("serve.ingest.rejected_unknown_instance");
        break;
      default:
        break;
    }
    SOSIM_EVENT(.kind = obs::EventKind::IngestReject,
                .code = static_cast<std::uint32_t>(reason),
                .a = s.instance, .b = s.tick,
                .x = std::isfinite(s.watts) ? s.watts : 0.0);
    {
        std::lock_guard<std::mutex> lock(quarantineMutex_);
        if (quarantine_.size() >= kQuarantineCapacity)
            quarantine_.pop_front();
        quarantine_.push_back(QuarantinedSample{s, reason});
    }
    return reason;
}

IngestStatus
StreamRing::ingest(const Sample &s)
{
    if (s.instance >= instances_)
        return reject(s, IngestStatus::RejectedUnknownInstance);
    if (!std::isfinite(s.watts))
        return reject(s, IngestStatus::RejectedNonFinite);
    if (s.watts < 0.0)
        return reject(s, IngestStatus::RejectedNegative);
    if (s.tick > frontier_)
        return reject(s, IngestStatus::RejectedFuture);
    if (s.tick + window_ <= frontier_)
        return reject(s, IngestStatus::RejectedStale);

    const std::size_t slot_index = s.tick % window_;
    std::uint64_t &fill =
        filledTick_[s.instance * window_ + slot_index];
    // An occupied slot inside the window can only hold this same tick
    // (the eviction in advanceTo clears departing ticks), so occupied
    // means duplicate.
    if (fill != kEmpty)
        return reject(s, IngestStatus::RejectedDuplicate);

    fill = s.tick;
    arena_.mutableRow(s.instance)[slot_index] = s.watts;

    InstanceState &st = state_[s.instance];
    st.stats.sum += s.watts;
    st.stats.validCount += 1;
    const bool late = s.tick < frontier_;
    if (late) {
        // A behind-the-frontier fill cannot enter the monotonic deque
        // without breaking its tick ordering; mark the row for a one-off
        // rescan instead.
        st.dirty = true;
        counts_[static_cast<std::size_t>(IngestStatus::AcceptedLate)]
            .fetch_add(1, std::memory_order_relaxed);
        SOSIM_COUNT("serve.ingest.accepted");
        SOSIM_COUNT("serve.ingest.late");
        return IngestStatus::AcceptedLate;
    }
    while (!st.peaks.empty() && st.peaks.back().value <= s.watts)
        st.peaks.pop_back();
    st.peaks.push_back(PeakEntry{s.tick, s.watts});
    if (!st.dirty)
        st.stats.peak = st.peaks.front().value;
    counts_[static_cast<std::size_t>(IngestStatus::Accepted)].fetch_add(
        1, std::memory_order_relaxed);
    SOSIM_COUNT("serve.ingest.accepted");
    return IngestStatus::Accepted;
}

void
StreamRing::advanceTo(std::uint64_t tick)
{
    while (frontier_ < tick) {
        const std::uint64_t next = frontier_ + 1;
        const std::size_t slot_index =
            static_cast<std::size_t>(next % window_);
        for (std::size_t i = 0; i < instances_; ++i) {
            std::uint64_t &fill = filledTick_[i * window_ + slot_index];
            InstanceState &st = state_[i];
            if (fill != kEmpty) {
                const double old = slot(i, slot_index);
                st.stats.sum -= old;
                st.stats.validCount -= 1;
                fill = kEmpty;
                arena_.mutableRow(i)[slot_index] = kNaN;
            }
            // Entries whose tick just left the window sit at the deque
            // front (ticks enter in increasing order).
            while (!st.peaks.empty() &&
                   st.peaks.front().tick + window_ <= next)
                st.peaks.pop_front();
            if (!st.dirty)
                st.stats.peak =
                    st.peaks.empty() ? 0.0 : st.peaks.front().value;
        }
        frontier_ = next;
    }
    SOSIM_GAUGE_SET("serve.ring.frontier", double(frontier_));
}

void
StreamRing::rescanRow(std::size_t instance) const
{
    InstanceState &st = state_[instance];
    st.stats = RunningWindowStats{};
    st.peaks.clear();
    const std::uint64_t first =
        frontier_ + 1 >= window_ ? frontier_ + 1 - window_ : 0;
    for (std::uint64_t t = first; t <= frontier_; ++t) {
        const std::size_t slot_index =
            static_cast<std::size_t>(t % window_);
        if (filledTick_[instance * window_ + slot_index] == kEmpty)
            continue;
        const double v = slot(instance, slot_index);
        st.stats.sum += v;
        st.stats.validCount += 1;
        while (!st.peaks.empty() && st.peaks.back().value <= v)
            st.peaks.pop_back();
        st.peaks.push_back(PeakEntry{t, v});
    }
    st.stats.peak = st.peaks.empty() ? 0.0 : st.peaks.front().value;
    st.dirty = false;
    SOSIM_COUNT("serve.ring.rescans");
}

const RunningWindowStats &
StreamRing::stats(std::size_t instance) const
{
    SOSIM_REQUIRE(instance < instances_,
                  "StreamRing::stats: instance out of range");
    InstanceState &st = state_[instance];
    if (st.dirty)
        rescanRow(instance);
    return st.stats;
}

std::vector<trace::TimeSeries>
StreamRing::snapshotWindow() const
{
    std::vector<trace::TimeSeries> out;
    out.reserve(instances_);
    for (std::size_t i = 0; i < instances_; ++i) {
        std::vector<double> samples(window_, kNaN);
        for (std::size_t j = 0; j < window_; ++j) {
            // Oldest-first: sample j covers tick frontier + 1 - window
            // + j; ticks before the stream began stay NaN.
            if (frontier_ + 1 + j < window_)
                continue;
            const std::uint64_t t = frontier_ + 1 + j - window_;
            const std::size_t slot_index =
                static_cast<std::size_t>(t % window_);
            if (filledTick_[i * window_ + slot_index] != kEmpty)
                samples[j] = slot(i, slot_index);
        }
        out.emplace_back(std::move(samples), intervalMinutes_);
    }
    return out;
}

std::vector<QuarantinedSample>
StreamRing::quarantined() const
{
    std::lock_guard<std::mutex> lock(quarantineMutex_);
    return std::vector<QuarantinedSample>(quarantine_.begin(),
                                          quarantine_.end());
}

std::uint64_t
StreamRing::acceptedCount() const
{
    return counts_[static_cast<std::size_t>(IngestStatus::Accepted)]
               .load(std::memory_order_relaxed) +
           counts_[static_cast<std::size_t>(IngestStatus::AcceptedLate)]
               .load(std::memory_order_relaxed);
}

std::uint64_t
StreamRing::lateCount() const
{
    return counts_[static_cast<std::size_t>(IngestStatus::AcceptedLate)]
        .load(std::memory_order_relaxed);
}

std::uint64_t
StreamRing::rejectedCount(IngestStatus reason) const
{
    SOSIM_REQUIRE(!ingestAccepted(reason),
                  "StreamRing::rejectedCount: not a rejection reason");
    return counts_[static_cast<std::size_t>(reason)].load(
        std::memory_order_relaxed);
}

std::uint64_t
StreamRing::rejectedTotal() const
{
    std::uint64_t total = 0;
    for (std::size_t r = 2; r < counts_.size(); ++r)
        total += counts_[r].load(std::memory_order_relaxed);
    return total;
}

std::vector<double>
StreamRing::slotValues() const
{
    std::vector<double> out(instances_ * window_);
    for (std::size_t i = 0; i < instances_; ++i)
        for (std::size_t s = 0; s < window_; ++s)
            out[i * window_ + s] = slot(i, s);
    return out;
}

std::vector<std::uint64_t>
StreamRing::slotFillTicks() const
{
    return filledTick_;
}

std::vector<std::uint64_t>
StreamRing::counterValues() const
{
    std::vector<std::uint64_t> out(counts_.size());
    for (std::size_t c = 0; c < counts_.size(); ++c)
        out[c] = counts_[c].load(std::memory_order_relaxed);
    return out;
}

void
StreamRing::restoreState(std::uint64_t frontier,
                         const std::vector<double> &slot_values,
                         const std::vector<std::uint64_t> &slot_fill_ticks,
                         const std::vector<std::uint64_t> &counters)
{
    SOSIM_REQUIRE(slot_values.size() == instances_ * window_ &&
                      slot_fill_ticks.size() == instances_ * window_ &&
                      counters.size() == counts_.size(),
                  "StreamRing::restoreState: payload shape mismatch");
    frontier_ = frontier;
    filledTick_ = slot_fill_ticks;
    for (std::size_t i = 0; i < instances_; ++i) {
        double *row = arena_.mutableRow(i);
        for (std::size_t s = 0; s < window_; ++s)
            row[s] = slot_values[i * window_ + s];
    }
    for (std::size_t c = 0; c < counts_.size(); ++c)
        counts_[c].store(counters[c], std::memory_order_relaxed);
    // Rebuild the incremental state from the restored slots so a
    // restored ring is indistinguishable from one that streamed the
    // same samples.
    for (std::size_t i = 0; i < instances_; ++i)
        rescanRow(i);
    {
        std::lock_guard<std::mutex> lock(quarantineMutex_);
        quarantine_.clear();
    }
}

} // namespace sosim::serve
