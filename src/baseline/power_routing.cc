#include "power_routing.h"

#include <algorithm>

#include "util/error.h"

namespace sosim::baseline {

PowerRoutingResult
routePower(const power::PowerTree &tree,
           const std::vector<trace::TimeSeries> &itraces,
           const power::Assignment &assignment,
           const PowerRoutingConfig &config)
{
    SOSIM_REQUIRE(!itraces.empty(), "routePower: no instances");
    SOSIM_REQUIRE(assignment.size() == itraces.size(),
                  "routePower: assignment size mismatch");
    SOSIM_REQUIRE(config.sweeps >= 1, "routePower: sweeps must be >= 1");
    const auto &rpps = tree.nodesAtLevel(power::Level::Rpp);
    SOSIM_REQUIRE(rpps.size() >= 2,
                  "routePower: need at least two RPPs for dual cording");
    SOSIM_REQUIRE(config.secondaryOffset >= 1 &&
                      config.secondaryOffset < rpps.size(),
                  "routePower: secondary offset must be in "
                  "[1, #RPPs)");

    // Rack load traces.
    const auto &proto = itraces.front();
    std::vector<trace::TimeSeries> rack_load(tree.nodeCount());
    for (const auto rack : tree.racks())
        rack_load[rack] =
            trace::TimeSeries::zeros(proto.size(),
                                     proto.intervalMinutes());
    for (std::size_t i = 0; i < itraces.size(); ++i) {
        SOSIM_REQUIRE(itraces[i].alignedWith(proto),
                      "routePower: misaligned traces");
        const auto rack = assignment[i];
        SOSIM_REQUIRE(rack < tree.nodeCount() &&
                          tree.node(rack).level == power::Level::Rack,
                      "routePower: assignment target is not a rack");
        rack_load[rack] += itraces[i];
    }

    // Primary and secondary feed of each rack.
    std::vector<std::size_t> rpp_index(tree.nodeCount(), 0);
    for (std::size_t k = 0; k < rpps.size(); ++k)
        rpp_index[rpps[k]] = k;
    struct Cording {
        power::NodeId rack;
        power::NodeId primary;
        power::NodeId secondary;
    };
    std::vector<Cording> cords;
    cords.reserve(tree.racks().size());
    for (const auto rack : tree.racks()) {
        const auto primary = tree.node(rack).parent;
        const auto secondary =
            rpps[(rpp_index[primary] + config.secondaryOffset) %
                 rpps.size()];
        cords.push_back({rack, primary, secondary});
    }

    PowerRoutingResult result;
    result.rppTraces.assign(tree.nodeCount(), trace::TimeSeries());
    for (const auto rpp : rpps)
        result.rppTraces[rpp] = trace::TimeSeries::zeros(
            proto.size(), proto.intervalMinutes());

    // Per-timestep relaxation: each rack repeatedly re-splits its load
    // so that its two feeds' totals equalize, subject to the split
    // staying in [0, 1].  A few Jacobi sweeps reach a near-balanced
    // fixed point.
    std::vector<double> split(cords.size(), 1.0);
    std::vector<double> feed(tree.nodeCount(), 0.0);
    for (std::size_t t = 0; t < proto.size(); ++t) {
        std::fill(split.begin(), split.end(), 1.0);
        for (int sweep = 0; sweep < config.sweeps; ++sweep) {
            // Feed totals under the current splits.
            for (const auto rpp : rpps)
                feed[rpp] = 0.0;
            for (std::size_t c = 0; c < cords.size(); ++c) {
                const double load = rack_load[cords[c].rack][t];
                feed[cords[c].primary] += split[c] * load;
                feed[cords[c].secondary] += (1.0 - split[c]) * load;
            }
            // Local re-balancing of every cord.
            for (std::size_t c = 0; c < cords.size(); ++c) {
                const double load = rack_load[cords[c].rack][t];
                if (load <= 0.0)
                    continue;
                const double on_primary = split[c] * load;
                const double p_rest =
                    feed[cords[c].primary] - on_primary;
                const double s_rest = feed[cords[c].secondary] -
                                      (load - on_primary);
                // Split that equalizes the two feeds: p_rest + x*load
                // == s_rest + (1-x)*load.
                const double x = std::clamp(
                    (s_rest - p_rest + load) / (2.0 * load), 0.0, 1.0);
                feed[cords[c].primary] += (x - split[c]) * load;
                feed[cords[c].secondary] -= (x - split[c]) * load;
                split[c] = x;
            }
        }
        for (const auto rpp : rpps)
            result.rppTraces[rpp][t] = feed[rpp];
    }

    for (const auto rpp : rpps)
        result.sumOfRoutedPeaks += result.rppTraces[rpp].peak();

    // Reference: single-corded (everything on the primary feed).
    const auto unrouted = tree.aggregateTraces(itraces, assignment);
    result.sumOfUnroutedPeaks =
        tree.sumOfPeaks(unrouted, power::Level::Rpp);
    return result;
}

} // namespace sosim::baseline
