#include "statprof.h"

#include "trace/cdf.h"
#include "util/error.h"

namespace sosim::baseline {

namespace {

void
validate(const ProvisioningConfig &config)
{
    SOSIM_REQUIRE(config.underProvisionPct >= 0.0 &&
                      config.underProvisionPct < 100.0,
                  "ProvisioningConfig: u must be in [0, 100)");
    SOSIM_REQUIRE(config.overbookingDelta >= 0.0,
                  "ProvisioningConfig: delta must be >= 0");
}

} // namespace

ProvisioningReport
statProfRequiredBudget(const power::PowerTree &tree,
                       const std::vector<trace::TimeSeries> &itraces,
                       const ProvisioningConfig &config)
{
    validate(config);
    SOSIM_REQUIRE(!itraces.empty(), "statProfRequiredBudget: no instances");

    double sum_percentiles = 0.0;
    for (const auto &t : itraces) {
        const trace::Cdf cdf(t);
        sum_percentiles = sum_percentiles +
                          cdf.percentile(100.0 - config.underProvisionPct);
    }

    (void)tree;
    ProvisioningReport report;
    report.requiredBudgetByLevel.assign(power::kNumLevels,
                                        sum_percentiles);
    report.requiredBudgetByLevel[power::levelDepth(
        power::Level::Datacenter)] =
        sum_percentiles / (1.0 + config.overbookingDelta);
    return report;
}

ProvisioningReport
smoothOperatorRequiredBudget(const power::PowerTree &tree,
                             const std::vector<trace::TimeSeries> &itraces,
                             const power::Assignment &assignment,
                             const ProvisioningConfig &config)
{
    validate(config);
    const auto node_traces = tree.aggregateTraces(itraces, assignment);

    ProvisioningReport report;
    report.requiredBudgetByLevel.assign(power::kNumLevels, 0.0);
    for (const auto level : power::kAllLevels) {
        double total = 0.0;
        for (const auto id : tree.nodesAtLevel(level)) {
            if (node_traces[id].peak() <= 0.0)
                continue; // Unpopulated node needs no budget.
            total += node_traces[id].percentile(
                100.0 - config.underProvisionPct);
        }
        if (level == power::Level::Datacenter)
            total /= 1.0 + config.overbookingDelta;
        report.requiredBudgetByLevel[power::levelDepth(level)] = total;
    }
    return report;
}

double
sumOfInstancePeaks(const std::vector<trace::TimeSeries> &itraces)
{
    double total = 0.0;
    for (const auto &t : itraces)
        total += t.peak();
    return total;
}

} // namespace sosim::baseline
