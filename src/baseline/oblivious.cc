#include "oblivious.h"

#include <algorithm>
#include <map>

#include "util/error.h"
#include "util/rng.h"

namespace sosim::baseline {

power::Assignment
obliviousPlacement(const power::PowerTree &tree,
                   const std::vector<std::size_t> &service_of)
{
    SOSIM_REQUIRE(!service_of.empty(), "obliviousPlacement: no instances");
    const auto &racks = tree.racks();

    // Concatenate service blocks in service-id order.
    std::map<std::size_t, std::vector<std::size_t>> by_service;
    for (std::size_t i = 0; i < service_of.size(); ++i)
        by_service[service_of[i]].push_back(i);
    std::vector<std::size_t> ordered;
    ordered.reserve(service_of.size());
    for (const auto &[sid, members] : by_service)
        ordered.insert(ordered.end(), members.begin(), members.end());

    // Fill racks evenly and contiguously: the first racks get the first
    // service's instances, and so on.
    const std::size_t n = ordered.size();
    const std::size_t per_rack = (n + racks.size() - 1) / racks.size();
    power::Assignment assignment(n, power::kNoNode);
    for (std::size_t k = 0; k < n; ++k)
        assignment[ordered[k]] = racks[std::min(k / per_rack,
                                                racks.size() - 1)];
    return assignment;
}

power::Assignment
randomPlacement(const power::PowerTree &tree, std::size_t instance_count,
                std::uint64_t seed)
{
    SOSIM_REQUIRE(instance_count > 0, "randomPlacement: no instances");
    const auto &racks = tree.racks();
    std::vector<std::size_t> ordered(instance_count);
    for (std::size_t i = 0; i < instance_count; ++i)
        ordered[i] = i;
    util::Rng rng(seed);
    rng.shuffle(ordered);

    power::Assignment assignment(instance_count, power::kNoNode);
    for (std::size_t k = 0; k < instance_count; ++k)
        assignment[ordered[k]] = racks[k % racks.size()];
    return assignment;
}

} // namespace sosim::baseline
