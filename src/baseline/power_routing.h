#ifndef SOSIM_BASELINE_POWER_ROUTING_H
#define SOSIM_BASELINE_POWER_ROUTING_H

/**
 * @file
 * Power Routing baseline (Pelley et al., ASPLOS'10), simplified.
 *
 * Power Routing attacks fragmentation in hardware: servers are
 * dual-corded, every rack is fed by a primary and a secondary RPP
 * (a "shuffled" topology), and a scheduler routes each rack's draw
 * between its two feeds to balance load across RPPs.  The paper's
 * Table 1 positions it as balancing local peaks but requiring new
 * power infrastructure (the richer cording) — the opposite trade from
 * SmoothOperator, which balances peaks in software on the existing
 * tree.
 *
 * This model reproduces the mechanism at the RPP level: per timestep,
 * rack loads are split across their two feeds by iterative local
 * relaxation, and the required capacity of each RPP is the peak of its
 * routed feed load.
 */

#include <cstddef>
#include <vector>

#include "power/power_tree.h"
#include "trace/time_series.h"

namespace sosim::baseline {

/** Configuration of the routing scheduler. */
struct PowerRoutingConfig {
    /**
     * How far away the secondary feed is: rack k's secondary RPP is
     * `secondaryOffset` positions after its primary in the RPP list
     * (wrapped).  Offsets that leave the local subtree give the
     * scheduler more freedom, mirroring the paper's shuffled topologies.
     */
    std::size_t secondaryOffset = 1;
    /** Relaxation sweeps per timestep. */
    int sweeps = 8;
};

/** Result of routing one placement's rack loads. */
struct PowerRoutingResult {
    /** Routed per-RPP load traces (indexed by NodeId). */
    std::vector<trace::TimeSeries> rppTraces;
    /** Sum over RPPs of their routed peak (capacity requirement). */
    double sumOfRoutedPeaks = 0.0;
    /** The same sum without routing (single-corded), for reference. */
    double sumOfUnroutedPeaks = 0.0;
};

/**
 * Route rack loads across dual feeds and report required RPP capacity.
 *
 * @param tree       Power infrastructure (defines racks and RPPs).
 * @param itraces    Power trace of every instance.
 * @param assignment Placement of instances onto racks.
 * @param config     Routing parameters.
 */
PowerRoutingResult
routePower(const power::PowerTree &tree,
           const std::vector<trace::TimeSeries> &itraces,
           const power::Assignment &assignment,
           const PowerRoutingConfig &config = {});

} // namespace sosim::baseline

#endif // SOSIM_BASELINE_POWER_ROUTING_H
