#ifndef SOSIM_BASELINE_OBLIVIOUS_H
#define SOSIM_BASELINE_OBLIVIOUS_H

/**
 * @file
 * Baseline placements.
 *
 * The paper's baseline is the "oblivious" production practice of placing
 * the instances of one service together ("instances of the same services
 * are typically placed together", section 1): service blocks fill racks
 * sequentially, so synchronous instances share sub-trees and fragment the
 * power budget.  A uniform random placement is also provided as a second
 * reference point.
 */

#include <cstdint>
#include <vector>

#include "power/power_tree.h"

namespace sosim::baseline {

/**
 * Service-block placement: instances grouped by service, groups laid out
 * contiguously across the racks in id order, racks filled evenly.
 *
 * @param tree       Power infrastructure.
 * @param service_of Service id of each instance.
 * @return Rack assignment of every instance.
 */
power::Assignment
obliviousPlacement(const power::PowerTree &tree,
                   const std::vector<std::size_t> &service_of);

/**
 * Uniform random placement with even rack occupancy (a random permutation
 * dealt round-robin across racks).
 *
 * @param tree           Power infrastructure.
 * @param instance_count Number of instances to place.
 * @param seed           Shuffle seed.
 */
power::Assignment
randomPlacement(const power::PowerTree &tree, std::size_t instance_count,
                std::uint64_t seed);

} // namespace sosim::baseline

#endif // SOSIM_BASELINE_OBLIVIOUS_H
