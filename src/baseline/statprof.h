#ifndef SOSIM_BASELINE_STATPROF_H
#define SOSIM_BASELINE_STATPROF_H

/**
 * @file
 * Reimplementation of the statistical-profiling provisioning baseline
 * (Govindan et al., EuroSys'09) as described in section 5.2.1 of the
 * SmoothOperator paper, plus the SmoothOperator counterpart used in
 * Figure 11.
 *
 * StatProf(u, delta) models each instance's power as a CDF, provisions
 * each power node as the sum of its instances' (100-u)-th percentile
 * power (placement-independent), and overbooks the datacenter level by a
 * factor (1 + delta).
 *
 * SmoOp(u, delta) provisions each node at the (100-u)-th percentile of
 * the node's *actual aggregate trace* under the workload-aware placement
 * and overbooks the datacenter level the same way — exploiting temporal
 * asynchrony instead of (only) probabilistic multiplexing.
 */

#include <vector>

#include "power/level.h"
#include "power/power_tree.h"
#include "trace/time_series.h"

namespace sosim::baseline {

/** Degree of under-provisioning and overbooking, (u, delta). */
struct ProvisioningConfig {
    /** Percentile slack u: provision the (100-u)-th percentile. */
    double underProvisionPct = 0.0;
    /** Datacenter-level overbooking factor delta. */
    double overbookingDelta = 0.0;
};

/** Required budget at each tree level (indexed by levelDepth). */
struct ProvisioningReport {
    std::vector<double> requiredBudgetByLevel;

    double at(power::Level level) const
    {
        return requiredBudgetByLevel[power::levelDepth(level)];
    }
};

/**
 * StatProf(u, delta): required budget per level.
 *
 * Every non-root level requires sum_i c_{i,u} (the placement-independent
 * sum of per-instance percentile powers); the datacenter level divides
 * by (1 + delta).
 *
 * @param tree    Power infrastructure (defines the level set).
 * @param itraces Power trace of every instance.
 * @param config  (u, delta).
 */
ProvisioningReport
statProfRequiredBudget(const power::PowerTree &tree,
                       const std::vector<trace::TimeSeries> &itraces,
                       const ProvisioningConfig &config);

/**
 * SmoOp(u, delta): required budget per level for a concrete placement.
 *
 * Each node requires the (100-u)-th percentile of its aggregate trace;
 * the datacenter level divides by (1 + delta).  With u = delta = 0 this
 * is plain peak provisioning of the optimized placement.
 *
 * @param tree       Power infrastructure.
 * @param itraces    Power trace of every instance.
 * @param assignment Placement whose aggregates are provisioned.
 * @param config     (u, delta).
 */
ProvisioningReport
smoothOperatorRequiredBudget(const power::PowerTree &tree,
                             const std::vector<trace::TimeSeries> &itraces,
                             const power::Assignment &assignment,
                             const ProvisioningConfig &config);

/**
 * The peak-provisioning normalization constant used by the Figure 11
 * bench: the sum of every instance's individual peak power, i.e.
 * StatProf(0, 0)'s per-level requirement.
 */
double sumOfInstancePeaks(const std::vector<trace::TimeSeries> &itraces);

} // namespace sosim::baseline

#endif // SOSIM_BASELINE_STATPROF_H
