#ifndef SOSIM_POWER_LEVEL_H
#define SOSIM_POWER_LEVEL_H

/**
 * @file
 * Levels of the multi-level power delivery infrastructure (Figure 2 of the
 * paper): datacenter -> suite -> main switching board (MSB) -> switching
 * board (SB) -> reactive power panel (RPP) -> rack.  Servers attach to
 * racks, the leaf power nodes.
 */

#include <array>
#include <string>

namespace sosim::power {

/** A level in the power delivery tree, ordered from root to leaf. */
enum class Level : int {
    Datacenter = 0,
    Suite = 1,
    Msb = 2,
    Sb = 3,
    Rpp = 4,
    Rack = 5,
};

/** Number of levels in the tree. */
inline constexpr int kNumLevels = 6;

/** All levels, root first. */
inline constexpr std::array<Level, kNumLevels> kAllLevels = {
    Level::Datacenter, Level::Suite, Level::Msb,
    Level::Sb,         Level::Rpp,   Level::Rack,
};

/** Human-readable level name ("DC", "SUITE", "MSB", "SB", "RPP", "RACK"). */
std::string levelName(Level level);

/** The level immediately below (towards the leaves); requires not Rack. */
Level levelBelow(Level level);

/** The level immediately above (towards the root); requires not DC. */
Level levelAbove(Level level);

/** Integer depth of a level (Datacenter = 0). */
inline int
levelDepth(Level level)
{
    return static_cast<int>(level);
}

} // namespace sosim::power

#endif // SOSIM_POWER_LEVEL_H
