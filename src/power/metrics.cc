#include "metrics.h"

#include <vector>

#include "util/error.h"

namespace sosim::power {

trace::TimeSeries
powerSlack(const trace::TimeSeries &node_trace, double budget)
{
    SOSIM_REQUIRE(budget > 0.0, "powerSlack: budget must be positive");
    std::vector<double> out(node_trace.size());
    for (std::size_t i = 0; i < node_trace.size(); ++i)
        out[i] = budget - node_trace[i];
    return trace::TimeSeries(std::move(out), node_trace.intervalMinutes());
}

double
energySlack(const trace::TimeSeries &node_trace, double budget)
{
    return powerSlack(node_trace, budget).integralMinutes();
}

double
averagePowerSlack(const trace::TimeSeries &node_trace, double budget)
{
    return powerSlack(node_trace, budget).mean();
}

double
offPeakPowerSlack(const trace::TimeSeries &node_trace, double budget,
                  double offpeak_quantile)
{
    SOSIM_REQUIRE(offpeak_quantile > 0.0 && offpeak_quantile <= 1.0,
                  "offPeakPowerSlack: quantile must be in (0, 1]");
    const double cutoff = node_trace.percentile(offpeak_quantile * 100.0);
    double acc = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < node_trace.size(); ++i) {
        if (node_trace[i] <= cutoff) {
            acc += budget - node_trace[i];
            ++count;
        }
    }
    SOSIM_ASSERT(count > 0, "offPeakPowerSlack: no off-peak samples");
    return acc / static_cast<double>(count);
}

double
peakHeadroomFraction(const trace::TimeSeries &node_trace, double budget)
{
    SOSIM_REQUIRE(budget > 0.0,
                  "peakHeadroomFraction: budget must be positive");
    return (budget - node_trace.peak()) / budget;
}

} // namespace sosim::power
