#include "level.h"

#include "util/error.h"

namespace sosim::power {

std::string
levelName(Level level)
{
    switch (level) {
      case Level::Datacenter:
        return "DC";
      case Level::Suite:
        return "SUITE";
      case Level::Msb:
        return "MSB";
      case Level::Sb:
        return "SB";
      case Level::Rpp:
        return "RPP";
      case Level::Rack:
        return "RACK";
    }
    SOSIM_ASSERT(false, "levelName: invalid level");
}

Level
levelBelow(Level level)
{
    SOSIM_REQUIRE(level != Level::Rack, "levelBelow: Rack is the leaf level");
    return static_cast<Level>(static_cast<int>(level) + 1);
}

Level
levelAbove(Level level)
{
    SOSIM_REQUIRE(level != Level::Datacenter,
                  "levelAbove: Datacenter is the root level");
    return static_cast<Level>(static_cast<int>(level) - 1);
}

} // namespace sosim::power
