#ifndef SOSIM_POWER_METRICS_H
#define SOSIM_POWER_METRICS_H

/**
 * @file
 * Power budget utilization metrics from section 2.2 of the paper:
 * power slack (Eq. 1), energy slack (Eq. 2), and headroom accounting.
 */

#include "trace/time_series.h"

namespace sosim::power {

/**
 * Power slack series: P_slack,t = P_budget - P_instant,t (Eq. 1).
 *
 * @param node_trace Aggregate power trace at a node.
 * @param budget     The node's fixed power budget; must cover the peak
 *                   (negative slack would mean a tripped breaker).
 */
trace::TimeSeries powerSlack(const trace::TimeSeries &node_trace,
                             double budget);

/**
 * Energy slack over the trace's timespan: the integral of power slack
 * (Eq. 2), in (power units x minutes).
 */
double energySlack(const trace::TimeSeries &node_trace, double budget);

/**
 * Average power slack over the trace's timespan, in power units.
 */
double averagePowerSlack(const trace::TimeSeries &node_trace, double budget);

/**
 * Average power slack restricted to off-peak samples.  A sample is
 * off-peak when the aggregate power is below `offpeak_quantile` of the
 * trace's own range (Figure 14 reports off-peak slack reduction
 * separately because that is where reshaping recovers the most energy).
 *
 * @param node_trace       Aggregate power trace at a node.
 * @param budget           The node's power budget.
 * @param offpeak_quantile Samples with power below this quantile of the
 *                         trace count as off-peak (default: lower half).
 */
double offPeakPowerSlack(const trace::TimeSeries &node_trace, double budget,
                         double offpeak_quantile = 0.5);

/**
 * Relative peak headroom: (budget - peak) / budget.  The fraction of the
 * budget never used even at the worst minute; this is what placement
 * optimization converts into extra servers.
 */
double peakHeadroomFraction(const trace::TimeSeries &node_trace,
                            double budget);

} // namespace sosim::power

#endif // SOSIM_POWER_METRICS_H
