#include "breaker.h"

#include "util/error.h"

namespace sosim::power {

BreakerModel::BreakerModel(double budget, int trip_after_minutes)
    : budget_(budget), tripAfterMinutes_(trip_after_minutes)
{
    SOSIM_REQUIRE(budget > 0.0, "BreakerModel: budget must be positive");
    SOSIM_REQUIRE(trip_after_minutes >= 0,
                  "BreakerModel: trip delay must be non-negative");
}

std::optional<std::size_t>
BreakerModel::firstTripIndex(const trace::TimeSeries &node_trace) const
{
    const int interval = node_trace.intervalMinutes();
    // Number of consecutive over-budget samples that constitutes a
    // sustained overload of at least tripAfterMinutes_.
    const std::size_t need = tripAfterMinutes_ == 0
        ? 1
        : static_cast<std::size_t>(
              (tripAfterMinutes_ + interval - 1) / interval);

    std::size_t run = 0;
    for (std::size_t i = 0; i < node_trace.size(); ++i) {
        if (node_trace[i] > budget_) {
            if (++run >= need)
                return i;
        } else {
            run = 0;
        }
    }
    return std::nullopt;
}

std::size_t
BreakerModel::overloadSamples(const trace::TimeSeries &node_trace) const
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < node_trace.size(); ++i)
        if (node_trace[i] > budget_)
            ++count;
    return count;
}

} // namespace sosim::power
