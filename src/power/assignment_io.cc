#include "assignment_io.h"

#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace sosim::power {

void
writeAssignmentCsv(std::ostream &os, const PowerTree &tree,
                   const Assignment &assignment)
{
    SOSIM_REQUIRE(!assignment.empty(),
                  "writeAssignmentCsv: empty assignment");
    os << "instance,rack\n";
    for (std::size_t i = 0; i < assignment.size(); ++i) {
        const NodeId rack = assignment[i];
        SOSIM_REQUIRE(rack < tree.nodeCount() &&
                          tree.node(rack).level == Level::Rack,
                      "writeAssignmentCsv: entry is not a rack");
        os << i << ',' << tree.node(rack).name << '\n';
    }
}

Assignment
readAssignmentCsv(std::istream &is, const PowerTree &tree)
{
    // Rack name -> id lookup.
    std::map<std::string, NodeId> by_name;
    for (const auto rack : tree.racks())
        by_name[tree.node(rack).name] = rack;

    std::string line;
    SOSIM_REQUIRE(static_cast<bool>(std::getline(is, line)) &&
                      line == "instance,rack",
                  "readAssignmentCsv: missing 'instance,rack' header");

    std::map<std::size_t, NodeId> entries;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        const auto comma = line.find(',');
        SOSIM_REQUIRE(comma != std::string::npos,
                      "readAssignmentCsv: malformed row '" + line + "'");
        std::size_t instance = 0;
        try {
            instance = std::stoul(line.substr(0, comma));
        } catch (const std::exception &) {
            SOSIM_REQUIRE(false, "readAssignmentCsv: bad instance id in '" +
                                     line + "'");
        }
        const std::string rack_name = line.substr(comma + 1);
        const auto it = by_name.find(rack_name);
        SOSIM_REQUIRE(it != by_name.end(),
                      "readAssignmentCsv: unknown rack '" + rack_name +
                          "'");
        SOSIM_REQUIRE(entries.emplace(instance, it->second).second,
                      "readAssignmentCsv: duplicate instance " +
                          std::to_string(instance));
    }
    SOSIM_REQUIRE(!entries.empty(), "readAssignmentCsv: no rows");

    Assignment assignment(entries.size(), kNoNode);
    for (const auto &[instance, rack] : entries) {
        SOSIM_REQUIRE(instance < assignment.size(),
                      "readAssignmentCsv: instance ids must be dense "
                      "0..n-1");
        assignment[instance] = rack;
    }
    return assignment;
}

void
writeAssignmentCsvFile(const std::string &path, const PowerTree &tree,
                       const Assignment &assignment)
{
    std::ofstream os(path);
    SOSIM_REQUIRE(os.good(), "writeAssignmentCsvFile: cannot open " + path);
    writeAssignmentCsv(os, tree, assignment);
    SOSIM_REQUIRE(os.good(),
                  "writeAssignmentCsvFile: write failed for " + path);
}

Assignment
readAssignmentCsvFile(const std::string &path, const PowerTree &tree)
{
    std::ifstream is(path);
    SOSIM_REQUIRE(is.good(), "readAssignmentCsvFile: cannot open " + path);
    return readAssignmentCsv(is, tree);
}

} // namespace sosim::power
