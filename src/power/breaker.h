#ifndef SOSIM_POWER_BREAKER_H
#define SOSIM_POWER_BREAKER_H

/**
 * @file
 * Circuit breaker model.  Section 2.2: "When the aggregate power at a
 * power node exceeds the power budget of that node, after a short amount
 * of time, the circuit breaker is tripped and the power supply for the
 * entire subtree is shut down."  We model that "short amount of time" as
 * a configurable number of consecutive over-budget samples.
 */

#include <optional>

#include "trace/time_series.h"

namespace sosim::power {

/** Trip behaviour of the breaker guarding one power node. */
class BreakerModel
{
  public:
    /**
     * @param budget              The node's power budget.
     * @param trip_after_minutes  Sustained overload duration that trips
     *                            the breaker.  Zero trips on the first
     *                            over-budget sample.
     */
    BreakerModel(double budget, int trip_after_minutes = 0);

    /** The guarded budget. */
    double budget() const { return budget_; }

    /**
     * Scan an aggregate power trace and report the first trip.
     *
     * @return The sample index at which the breaker trips, or nullopt if
     *         the trace never sustains an overload long enough.
     */
    std::optional<std::size_t>
    firstTripIndex(const trace::TimeSeries &node_trace) const;

    /** True when the trace would trip this breaker at some point. */
    bool wouldTrip(const trace::TimeSeries &node_trace) const
    {
        return firstTripIndex(node_trace).has_value();
    }

    /** Number of over-budget samples in the trace (trip or not). */
    std::size_t overloadSamples(const trace::TimeSeries &node_trace) const;

  private:
    double budget_;
    int tripAfterMinutes_;
};

} // namespace sosim::power

#endif // SOSIM_POWER_BREAKER_H
