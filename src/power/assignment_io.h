#ifndef SOSIM_POWER_ASSIGNMENT_IO_H
#define SOSIM_POWER_ASSIGNMENT_IO_H

/**
 * @file
 * CSV import/export of placements, so an optimized assignment can be
 * handed to (or loaded from) an external deployment system:
 *
 *   instance,rack
 *   0,suite0/msb0/sb0/rpp0/rack0
 *   1,suite0/msb0/sb0/rpp0/rack1
 *   ...
 */

#include <iosfwd>
#include <string>

#include "power/power_tree.h"

namespace sosim::power {

/** Write an assignment as instance,rack-name CSV rows. */
void writeAssignmentCsv(std::ostream &os, const PowerTree &tree,
                        const Assignment &assignment);

/**
 * Parse an assignment CSV against a tree.
 *
 * Instances may appear in any order but must form a dense 0..n-1 range;
 * rack names must exist in the tree and be rack-level nodes.
 */
Assignment readAssignmentCsv(std::istream &is, const PowerTree &tree);

/** File-path convenience wrappers. */
void writeAssignmentCsvFile(const std::string &path, const PowerTree &tree,
                            const Assignment &assignment);
Assignment readAssignmentCsvFile(const std::string &path,
                                 const PowerTree &tree);

} // namespace sosim::power

#endif // SOSIM_POWER_ASSIGNMENT_IO_H
