#ifndef SOSIM_POWER_POWER_TREE_H
#define SOSIM_POWER_POWER_TREE_H

/**
 * @file
 * The multi-level power delivery tree.
 *
 * The tree itself is immutable once built; service-instance placements are
 * represented externally as an Assignment (instance index -> rack node id)
 * so that alternative placements over the same infrastructure can be
 * compared side by side, which is exactly what the paper's evaluation does.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "power/level.h"
#include "trace/kernels.h"
#include "trace/time_series.h"

namespace sosim::power {

/** Index of a node within a PowerTree. */
using NodeId = std::size_t;

/** Sentinel for "no node" (the root's parent). */
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/**
 * A placement: element i is the rack (leaf power node) that service
 * instance i is connected to.
 */
using Assignment = std::vector<NodeId>;

/** One power delivery device in the tree. */
struct PowerNode {
    NodeId id = kNoNode;
    Level level = Level::Datacenter;
    NodeId parent = kNoNode;
    std::vector<NodeId> children;
    /** Provisioned power budget in (normalized) watts; 0 = unset. */
    double budgetWatts = 0.0;
    /** Stable human-readable name, e.g. "dc0/suite1/msb0/sb1/rpp2/rack3". */
    std::string name;
};

/** Fan-out of each tree level; defaults follow DESIGN.md section 6. */
struct TopologySpec {
    int suites = 4;
    int msbsPerSuite = 2;
    int sbsPerMsb = 2;
    int rppsPerSb = 4;
    int racksPerRpp = 4;

    /** Total number of racks this specification yields. */
    int totalRacks() const
    {
        return suites * msbsPerSuite * sbsPerMsb * rppsPerSb * racksPerRpp;
    }
};

/**
 * An immutable power delivery tree built from a TopologySpec.
 *
 * Node 0 is always the datacenter root; children are contiguous and
 * ordered, so nodesAtLevel() returns stable, deterministic id lists.
 */
class PowerTree
{
  public:
    /** Build the full tree for a topology specification. */
    explicit PowerTree(const TopologySpec &spec);

    /** The specification this tree was built from. */
    const TopologySpec &spec() const { return spec_; }

    /** Total number of nodes across all levels. */
    std::size_t nodeCount() const { return nodes_.size(); }

    /** Node lookup (checked). */
    const PowerNode &node(NodeId id) const;

    /** The root (datacenter) node id. */
    NodeId root() const { return 0; }

    /** Ids of all nodes at the given level, in construction order. */
    const std::vector<NodeId> &nodesAtLevel(Level level) const;

    /** Ids of all rack (leaf) nodes. */
    const std::vector<NodeId> &racks() const
    {
        return nodesAtLevel(Level::Rack);
    }

    /** All rack ids in the subtree rooted at `id`. */
    std::vector<NodeId> racksUnder(NodeId id) const;

    /** Mutable budget setter (budgets are the only mutable node state). */
    void setBudget(NodeId id, double watts);

    /**
     * Aggregate per-node power traces for a placement.
     *
     * @param instance_traces Trace of each service instance, indexed by
     *                        instance id.
     * @param assignment      Rack id for each instance; must be racks of
     *                        this tree and cover every instance.
     * @return One aggregate trace per node, indexed by NodeId; parents are
     *         the exact sample-wise sum of their children.
     */
    std::vector<trace::TimeSeries>
    aggregateTraces(const std::vector<trace::TimeSeries> &instance_traces,
                    const Assignment &assignment) const;

    /**
     * View overload: aggregate from non-owning trace views (e.g. the
     * rows of a trace::TraceArena) instead of owned series.  Sample-wise
     * identical results to the TimeSeries overload — only the storage
     * of the inputs differs.
     */
    std::vector<trace::TimeSeries>
    aggregateTraces(const std::vector<trace::TraceView> &instance_traces,
                    const Assignment &assignment) const;

    /**
     * Sum of per-node peak power at one level (the paper's fragmentation
     * indicator, section 2.2) given per-node aggregate traces.
     */
    double sumOfPeaks(const std::vector<trace::TimeSeries> &node_traces,
                      Level level) const;

    /** Instances assigned to each rack under `assignment`. */
    std::vector<std::vector<std::size_t>>
    instancesPerRack(const Assignment &assignment) const;

  private:
    NodeId addNode(Level level, NodeId parent, const std::string &name);

    TopologySpec spec_;
    std::vector<PowerNode> nodes_;
    std::vector<std::vector<NodeId>> byLevel_;
};

} // namespace sosim::power

#endif // SOSIM_POWER_POWER_TREE_H
