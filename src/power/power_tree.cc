#include "power_tree.h"

#include <algorithm>
#include <string>

#include "util/error.h"

namespace sosim::power {

PowerTree::PowerTree(const TopologySpec &spec)
    : spec_(spec), byLevel_(kNumLevels)
{
    SOSIM_REQUIRE(spec.suites >= 1 && spec.msbsPerSuite >= 1 &&
                      spec.sbsPerMsb >= 1 && spec.rppsPerSb >= 1 &&
                      spec.racksPerRpp >= 1,
                  "PowerTree: all fan-outs must be >= 1");

    const NodeId dc = addNode(Level::Datacenter, kNoNode, "dc");
    for (int s = 0; s < spec.suites; ++s) {
        const std::string sn = "suite" + std::to_string(s);
        const NodeId suite = addNode(Level::Suite, dc, sn);
        for (int m = 0; m < spec.msbsPerSuite; ++m) {
            const std::string mn = sn + "/msb" + std::to_string(m);
            const NodeId msb = addNode(Level::Msb, suite, mn);
            for (int b = 0; b < spec.sbsPerMsb; ++b) {
                const std::string bn = mn + "/sb" + std::to_string(b);
                const NodeId sb = addNode(Level::Sb, msb, bn);
                for (int r = 0; r < spec.rppsPerSb; ++r) {
                    const std::string rn = bn + "/rpp" + std::to_string(r);
                    const NodeId rpp = addNode(Level::Rpp, sb, rn);
                    for (int k = 0; k < spec.racksPerRpp; ++k) {
                        addNode(Level::Rack, rpp,
                                rn + "/rack" + std::to_string(k));
                    }
                }
            }
        }
    }
}

NodeId
PowerTree::addNode(Level level, NodeId parent, const std::string &name)
{
    const NodeId id = nodes_.size();
    PowerNode n;
    n.id = id;
    n.level = level;
    n.parent = parent;
    n.name = name;
    nodes_.push_back(std::move(n));
    byLevel_[levelDepth(level)].push_back(id);
    if (parent != kNoNode)
        nodes_[parent].children.push_back(id);
    return id;
}

const PowerNode &
PowerTree::node(NodeId id) const
{
    SOSIM_REQUIRE(id < nodes_.size(), "PowerTree::node: id out of range");
    return nodes_[id];
}

const std::vector<NodeId> &
PowerTree::nodesAtLevel(Level level) const
{
    return byLevel_[levelDepth(level)];
}

std::vector<NodeId>
PowerTree::racksUnder(NodeId id) const
{
    SOSIM_REQUIRE(id < nodes_.size(),
                  "PowerTree::racksUnder: id out of range");
    std::vector<NodeId> out;
    std::vector<NodeId> stack{id};
    while (!stack.empty()) {
        const NodeId cur = stack.back();
        stack.pop_back();
        if (nodes_[cur].level == Level::Rack) {
            out.push_back(cur);
            continue;
        }
        for (const NodeId child : nodes_[cur].children)
            stack.push_back(child);
    }
    // Depth-first order above reverses sibling order; restore it for
    // deterministic, ascending-by-id output.
    std::sort(out.begin(), out.end());
    return out;
}

void
PowerTree::setBudget(NodeId id, double watts)
{
    SOSIM_REQUIRE(id < nodes_.size(),
                  "PowerTree::setBudget: id out of range");
    SOSIM_REQUIRE(watts >= 0.0, "PowerTree::setBudget: negative budget");
    nodes_[id].budgetWatts = watts;
}

std::vector<trace::TimeSeries>
PowerTree::aggregateTraces(
    const std::vector<trace::TimeSeries> &instance_traces,
    const Assignment &assignment) const
{
    SOSIM_REQUIRE(assignment.size() == instance_traces.size(),
                  "aggregateTraces: assignment must cover every instance");
    SOSIM_REQUIRE(!instance_traces.empty(),
                  "aggregateTraces: need at least one instance");

    const auto &proto = instance_traces.front();
    for (const auto &t : instance_traces)
        SOSIM_REQUIRE(t.alignedWith(proto),
                      "aggregateTraces: misaligned instance traces");

    std::vector<trace::TimeSeries> node_traces(nodes_.size());
    for (auto &t : node_traces)
        t = trace::TimeSeries::zeros(proto.size(), proto.intervalMinutes());

    // Add every instance to its rack, then accumulate racks upwards.
    for (std::size_t i = 0; i < instance_traces.size(); ++i) {
        const NodeId rack = assignment[i];
        SOSIM_REQUIRE(rack < nodes_.size() &&
                          nodes_[rack].level == Level::Rack,
                      "aggregateTraces: assignment target is not a rack");
        node_traces[rack] += instance_traces[i];
    }

    // Children always have larger ids than parents (construction order),
    // so a reverse id sweep accumulates leaves into the root correctly.
    for (NodeId id = nodes_.size(); id-- > 1;) {
        const NodeId parent = nodes_[id].parent;
        node_traces[parent] += node_traces[id];
    }
    return node_traces;
}

std::vector<trace::TimeSeries>
PowerTree::aggregateTraces(
    const std::vector<trace::TraceView> &instance_traces,
    const Assignment &assignment) const
{
    SOSIM_REQUIRE(assignment.size() == instance_traces.size(),
                  "aggregateTraces: assignment must cover every instance");
    SOSIM_REQUIRE(!instance_traces.empty(),
                  "aggregateTraces: need at least one instance");

    const auto &proto = instance_traces.front();
    for (const auto &t : instance_traces)
        SOSIM_REQUIRE(t.alignedWith(proto),
                      "aggregateTraces: misaligned instance traces");

    std::vector<trace::TimeSeries> node_traces(nodes_.size());
    for (auto &t : node_traces)
        t = trace::TimeSeries::zeros(proto.size(), proto.intervalMinutes());

    // Add every instance to its rack, then accumulate racks upwards.
    for (std::size_t i = 0; i < instance_traces.size(); ++i) {
        const NodeId rack = assignment[i];
        SOSIM_REQUIRE(rack < nodes_.size() &&
                          nodes_[rack].level == Level::Rack,
                      "aggregateTraces: assignment target is not a rack");
        // Element-wise add in index order: sample-wise identical to the
        // owned-series overload's `+=`.
        double *dst = &node_traces[rack][0];
        const trace::TraceView v = instance_traces[i];
        for (std::size_t s = 0; s < v.size(); ++s)
            dst[s] += v[s];
    }

    for (NodeId id = nodes_.size(); id-- > 1;) {
        const NodeId parent = nodes_[id].parent;
        node_traces[parent] += node_traces[id];
    }
    return node_traces;
}

double
PowerTree::sumOfPeaks(const std::vector<trace::TimeSeries> &node_traces,
                      Level level) const
{
    SOSIM_REQUIRE(node_traces.size() == nodes_.size(),
                  "sumOfPeaks: need one trace per node");
    double total = 0.0;
    for (const NodeId id : nodesAtLevel(level))
        total += node_traces[id].peak();
    return total;
}

std::vector<std::vector<std::size_t>>
PowerTree::instancesPerRack(const Assignment &assignment) const
{
    std::vector<std::vector<std::size_t>> out(nodes_.size());
    for (std::size_t i = 0; i < assignment.size(); ++i) {
        const NodeId rack = assignment[i];
        SOSIM_REQUIRE(rack < nodes_.size() &&
                          nodes_[rack].level == Level::Rack,
                      "instancesPerRack: assignment target is not a rack");
        out[rack].push_back(i);
    }
    return out;
}

} // namespace sosim::power
