#include "conversion.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/error.h"

namespace sosim::sim {

ConversionPolicy::ConversionPolicy(const trace::TimeSeries &training_load,
                                   ConversionConfig config)
    : config_(config)
{
    SOSIM_REQUIRE(!training_load.empty(),
                  "ConversionPolicy: empty training load");
    SOSIM_REQUIRE(config.enterMargin >= 0.0 && config.enterMargin < 1.0,
                  "ConversionPolicy: enterMargin must be in [0, 1)");
    SOSIM_REQUIRE(config.hysteresisWidth >= 0.0,
                  "ConversionPolicy: hysteresisWidth must be >= 0");
    SOSIM_REQUIRE(config.conversionDelaySteps >= 1,
                  "ConversionPolicy: conversionDelaySteps must be >= 1");
    // The guarded load level: the highest per-server load at which LC met
    // QoS during the training window (the fleet was provisioned so that
    // the historical peak was safe).
    lConv_ = training_load.peak();
    SOSIM_REQUIRE(lConv_ > 0.0,
                  "ConversionPolicy: training load peak must be positive");
}

void
ConversionPolicy::reset()
{
    target_ = Phase::BatchHeavy;
    effective_ = Phase::BatchHeavy;
    lcFraction_ = 0.0;
}

Phase
ConversionPolicy::step(double original_lc_load)
{
    const double enter = lConv_ * (1.0 - config_.enterMargin);
    const double leave =
        lConv_ * (1.0 - config_.enterMargin - config_.hysteresisWidth);

    if (target_ == Phase::BatchHeavy && original_lc_load >= enter) {
        target_ = Phase::LcHeavy;
        SOSIM_COUNT("sim.conversion.role_flips");
    } else if (target_ == Phase::LcHeavy && original_lc_load < leave) {
        target_ = Phase::BatchHeavy;
        SOSIM_COUNT("sim.conversion.role_flips");
    }

    // Conversions complete over conversionDelaySteps steps.
    const double rate =
        1.0 / static_cast<double>(config_.conversionDelaySteps);
    if (target_ == Phase::LcHeavy)
        lcFraction_ = std::min(1.0, lcFraction_ + rate);
    else
        lcFraction_ = std::max(0.0, lcFraction_ - rate);

    effective_ = lcFraction_ > 0.5 ? Phase::LcHeavy : Phase::BatchHeavy;
    return effective_;
}

} // namespace sosim::sim
