#include "esd.h"

#include <algorithm>

#include "util/error.h"

namespace sosim::sim {

EsdOutcome
evaluateEsd(const trace::TimeSeries &node_trace, double budget,
            const BatteryConfig &config)
{
    SOSIM_REQUIRE(!node_trace.empty(), "evaluateEsd: empty trace");
    SOSIM_REQUIRE(budget > 0.0, "evaluateEsd: budget must be positive");
    SOSIM_REQUIRE(config.capacityPowerMinutes > 0.0,
                  "evaluateEsd: capacity must be positive");
    SOSIM_REQUIRE(config.maxDischargeRate > 0.0 &&
                      config.maxChargeRate >= 0.0,
                  "evaluateEsd: rates must be positive");
    SOSIM_REQUIRE(config.efficiency > 0.0 && config.efficiency <= 1.0,
                  "evaluateEsd: efficiency must be in (0, 1]");
    SOSIM_REQUIRE(config.initialChargeFraction >= 0.0 &&
                      config.initialChargeFraction <= 1.0,
                  "evaluateEsd: initial charge must be in [0, 1]");

    const double minutes =
        static_cast<double>(node_trace.intervalMinutes());
    double charge =
        config.capacityPowerMinutes * config.initialChargeFraction;

    EsdOutcome outcome;
    outcome.firstFailure = node_trace.size();
    outcome.minStateOfCharge = charge / config.capacityPowerMinutes;

    for (std::size_t t = 0; t < node_trace.size(); ++t) {
        const double power = node_trace[t];
        if (power > budget) {
            const double need = power - budget;
            const double deliverable = std::min(
                {need, config.maxDischargeRate, charge / minutes});
            charge -= deliverable * minutes;
            outcome.energyDischarged += deliverable * minutes;
            if (deliverable + 1e-12 < need) {
                ++outcome.failedSamples;
                if (outcome.survived) {
                    outcome.survived = false;
                    outcome.firstFailure = t;
                }
            }
        } else {
            const double room =
                config.capacityPowerMinutes - charge;
            const double intake =
                std::min({budget - power, config.maxChargeRate,
                          room / (minutes * config.efficiency)});
            charge += intake * config.efficiency * minutes;
            charge = std::min(charge, config.capacityPowerMinutes);
        }
        outcome.minStateOfCharge =
            std::min(outcome.minStateOfCharge,
                     charge / config.capacityPowerMinutes);
    }
    return outcome;
}

} // namespace sosim::sim
