#ifndef SOSIM_SIM_DVFS_H
#define SOSIM_SIM_DVFS_H

/**
 * @file
 * First-order DVFS model for Batch servers: throughput scales linearly
 * with frequency while dynamic power scales near-cubically.  The paper's
 * proactive throttling and boosting policy (section 4.2) trades Batch
 * frequency against power headroom; only the relative power/throughput
 * deltas matter for the evaluation, which this model captures.
 */

namespace sosim::sim {

/** Normalized frequency/power/throughput model of one server. */
class DvfsModel
{
  public:
    /**
     * @param idle_fraction Fraction of max power drawn at zero load.
     * @param exponent      Dynamic-power exponent in frequency (~3 for
     *                      voltage-frequency scaling).
     * @param min_frequency Lowest supported normalized frequency.
     * @param max_frequency Highest supported normalized frequency (boost
     *                      ceiling), >= 1.
     */
    explicit DvfsModel(double idle_fraction = 0.45, double exponent = 3.0,
                       double min_frequency = 0.5,
                       double max_frequency = 1.2);

    /** Normalized power at frequency f (power at f=1 is 1.0). */
    double powerAt(double frequency) const;

    /** Normalized throughput at frequency f (throughput at f=1 is 1.0). */
    double throughputAt(double frequency) const;

    /**
     * Largest supported frequency whose power does not exceed `power`.
     * Clamped into [minFrequency, maxFrequency].
     */
    double frequencyForPower(double power) const;

    double idleFraction() const { return idleFraction_; }
    double minFrequency() const { return minFrequency_; }
    double maxFrequency() const { return maxFrequency_; }

  private:
    double idleFraction_;
    double exponent_;
    double minFrequency_;
    double maxFrequency_;
};

} // namespace sosim::sim

#endif // SOSIM_SIM_DVFS_H
