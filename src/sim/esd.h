#ifndef SOSIM_SIM_ESD_H
#define SOSIM_SIM_ESD_H

/**
 * @file
 * Energy storage device (battery / distributed UPS) model.
 *
 * Related-work comparator: proposals such as DistributedUPS [Kontorinis
 * et al., ISCA'12] ride out peaks by discharging batteries.  The paper
 * argues (sections 1 and 6) that battery capacity only covers peaks of
 * at most tens of minutes, while Facebook-type diurnal peaks last hours
 * — and that unbalanced placements deplete the ESDs at exactly the
 * fragmented nodes.  This model lets the benches quantify that claim.
 */

#include <cstddef>

#include "trace/time_series.h"

namespace sosim::sim {

/** Battery bank attached to one power node. */
struct BatteryConfig {
    /**
     * Usable energy, in (power units x minutes).  E.g. a bank able to
     * sustain a 1.0-power-unit overage for 10 minutes has capacity 10.
     */
    double capacityPowerMinutes = 10.0;
    /** Maximum discharge rate, in power units. */
    double maxDischargeRate = 1.0;
    /** Maximum recharge rate, in power units. */
    double maxChargeRate = 0.5;
    /** Round-trip efficiency applied while charging. */
    double efficiency = 0.9;
    /** Initial state of charge as a fraction of capacity. */
    double initialChargeFraction = 1.0;
};

/** Result of riding a node's trace on a battery bank. */
struct EsdOutcome {
    /** True when every over-budget sample was fully covered. */
    bool survived = true;
    /** Samples whose overage the battery could not (fully) cover. */
    std::size_t failedSamples = 0;
    /** First failed sample, or the trace size if none. */
    std::size_t firstFailure = 0;
    /** Lowest state of charge reached (fraction of capacity). */
    double minStateOfCharge = 1.0;
    /** Total energy discharged (power units x minutes). */
    double energyDischarged = 0.0;
};

/**
 * Simulate a battery bank covering a node's over-budget power.
 *
 * At each sample, power above the budget is served from the battery
 * (bounded by the discharge rate and remaining charge); power below the
 * budget recharges it (bounded by the charge rate and efficiency).
 *
 * @param node_trace Aggregate power trace at the node.
 * @param budget     The node's power budget.
 * @param config     Battery parameters.
 */
EsdOutcome evaluateEsd(const trace::TimeSeries &node_trace, double budget,
                       const BatteryConfig &config);

} // namespace sosim::sim

#endif // SOSIM_SIM_ESD_H
