#include "capping.h"

#include <algorithm>

#include "util/error.h"

namespace sosim::sim {

CappingReport
evaluateCapping(const power::PowerTree &tree,
                const std::vector<trace::TimeSeries> &itraces,
                const power::Assignment &assignment,
                const std::vector<CapClass> &cap_class,
                const std::vector<double> &budgets, power::Level level,
                const CappingConfig &config)
{
    SOSIM_REQUIRE(!itraces.empty(), "evaluateCapping: no instances");
    SOSIM_REQUIRE(assignment.size() == itraces.size() &&
                      cap_class.size() == itraces.size(),
                  "evaluateCapping: size mismatch");
    SOSIM_REQUIRE(budgets.size() == tree.nodeCount(),
                  "evaluateCapping: need one budget per node");
    SOSIM_REQUIRE(config.maxBatchShave >= 0.0 &&
                      config.maxBatchShave <= 1.0 &&
                      config.maxStorageShave >= 0.0 &&
                      config.maxStorageShave <= 1.0 &&
                      config.maxLcShave >= 0.0 &&
                      config.maxLcShave <= 1.0,
                  "evaluateCapping: shave limits must be in [0, 1]");

    const auto &proto = itraces.front();
    const int interval = proto.intervalMinutes();

    // Per-class aggregate power under every node at the target level.
    // Compute per-rack first, then roll racks up into the level nodes.
    const std::size_t samples = proto.size();
    struct ClassAgg {
        trace::TimeSeries batch, storage, lc;
    };
    std::vector<ClassAgg> agg(tree.nodeCount());
    for (const auto id : tree.nodesAtLevel(level)) {
        agg[id].batch = trace::TimeSeries::zeros(samples, interval);
        agg[id].storage = trace::TimeSeries::zeros(samples, interval);
        agg[id].lc = trace::TimeSeries::zeros(samples, interval);
    }

    // Map each rack to its ancestor at `level`.
    std::vector<power::NodeId> ancestor(tree.nodeCount(), power::kNoNode);
    for (const auto id : tree.nodesAtLevel(level))
        for (const auto rack : tree.racksUnder(id))
            ancestor[rack] = id;

    for (std::size_t i = 0; i < itraces.size(); ++i) {
        SOSIM_REQUIRE(itraces[i].alignedWith(proto),
                      "evaluateCapping: misaligned traces");
        const power::NodeId node = ancestor[assignment[i]];
        SOSIM_ASSERT(node != power::kNoNode,
                     "evaluateCapping: rack without level ancestor");
        switch (cap_class[i]) {
          case CapClass::Batch:
            agg[node].batch += itraces[i];
            break;
          case CapClass::Storage:
            agg[node].storage += itraces[i];
            break;
          case CapClass::LatencyCritical:
            agg[node].lc += itraces[i];
            break;
        }
    }

    CappingReport report;
    for (const auto id : tree.nodesAtLevel(level)) {
        const double budget = budgets[id];
        if (budget <= 0.0)
            continue; // Unbudgeted node: nothing to enforce.
        NodeCappingStats stats;
        stats.node = id;
        for (std::size_t t = 0; t < samples; ++t) {
            const double batch = agg[id].batch[t];
            const double storage = agg[id].storage[t];
            const double lc = agg[id].lc[t];
            double over = batch + storage + lc - budget;
            if (over <= 0.0)
                continue;
            ++stats.overloadSamples;

            const double batch_shave =
                std::min(over, batch * config.maxBatchShave);
            over -= batch_shave;
            stats.batchCurtailed += batch_shave * interval;

            const double storage_shave =
                std::min(over, storage * config.maxStorageShave);
            over -= storage_shave;
            stats.storageCurtailed += storage_shave * interval;

            const double lc_shave =
                std::min(over, lc * config.maxLcShave);
            over -= lc_shave;
            stats.lcCurtailed += lc_shave * interval;

            if (over > 1e-12)
                ++stats.unresolvedSamples;
        }
        if (stats.overloadSamples == 0)
            continue;
        report.batchCurtailed += stats.batchCurtailed;
        report.storageCurtailed += stats.storageCurtailed;
        report.lcCurtailed += stats.lcCurtailed;
        report.overloadSamples += stats.overloadSamples;
        report.unresolvedSamples += stats.unresolvedSamples;
        report.perNode.push_back(std::move(stats));
    }
    return report;
}

} // namespace sosim::sim
