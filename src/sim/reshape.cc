#include "reshape.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"
#include "util/error.h"

namespace sosim::sim {

std::string
reshapeModeName(ReshapeMode mode)
{
    switch (mode) {
      case ReshapeMode::PreSmoothOperator:
        return "Pre-SmoothOperator";
      case ReshapeMode::AddLcOnly:
        return "Add-LC-only";
      case ReshapeMode::Conversion:
        return "Server Conversion";
      case ReshapeMode::ConversionThrottleBoost:
        return "Conversion + Throttle/Boost";
    }
    return "?";
}

ReshapeSimulator::ReshapeSimulator(ReshapeInputs inputs,
                                   ReshapeConfig config)
    : inputs_(std::move(inputs)), config_(config)
{
    SOSIM_REQUIRE(inputs_.lcServers > 0,
                  "ReshapeSimulator: need LC servers");
    SOSIM_REQUIRE(inputs_.trainingLoad.alignedWith(inputs_.testLoad),
                  "ReshapeSimulator: training/test load misaligned");
    SOSIM_REQUIRE(inputs_.otherPower.alignedWith(inputs_.testLoad),
                  "ReshapeSimulator: other-power trace misaligned");
    SOSIM_REQUIRE(inputs_.headroomFraction >= 0.0,
                  "ReshapeSimulator: headroom must be non-negative");
    SOSIM_REQUIRE(inputs_.lcIdleFraction >= 0.0 &&
                      inputs_.lcIdleFraction < 1.0,
                  "ReshapeSimulator: LC idle fraction must be in [0, 1)");
    SOSIM_REQUIRE(config_.throttleFrequency > 0.0 &&
                      config_.throttleFrequency <= 1.0,
                  "ReshapeSimulator: throttle frequency must be in (0, 1]");
    SOSIM_REQUIRE(config_.boostMaxFrequency >= 1.0,
                  "ReshapeSimulator: boost ceiling must be >= 1");
}

ReshapeResult
ReshapeSimulator::run() const
{
    SOSIM_SPAN("sim.reshape.run");
    const std::size_t n = inputs_.testLoad.size();
    const int interval = inputs_.testLoad.intervalMinutes();
    const double n_lc = static_cast<double>(inputs_.lcServers);
    const double n_batch = static_cast<double>(inputs_.batchServers);

    auto lc_server_power = [&](double load) {
        return inputs_.lcIdleFraction +
               (1.0 - inputs_.lcIdleFraction) * std::min(load, 1.0);
    };

    ReshapeResult result;

    // ---- Pre-SmoothOperator week -------------------------------------
    std::vector<double> load_pre(n), lc_thr_pre(n), batch_thr_pre(n),
        power_pre(n);
    for (std::size_t t = 0; t < n; ++t) {
        const double demand = n_lc * inputs_.testLoad[t];
        const double per_load = std::min(demand / n_lc, 1.0);
        load_pre[t] = per_load;
        lc_thr_pre[t] = std::min(demand, n_lc);
        batch_thr_pre[t] = n_batch; // f = 1.0 everywhere.
        power_pre[t] = n_lc * lc_server_power(per_load) +
                       n_batch * inputs_.batchDvfs.powerAt(1.0) +
                       inputs_.otherPower[t];
    }
    result.perLcLoadPre = trace::TimeSeries(load_pre, interval);
    result.lcThroughputPre = trace::TimeSeries(lc_thr_pre, interval);
    result.batchThroughputPre = trace::TimeSeries(batch_thr_pre, interval);
    result.dcPowerPre = trace::TimeSeries(power_pre, interval);

    // The root budget: fragmentation made `headroom` of it unusable, so
    // the pre-optimization peak sat below the budget by that fraction.
    result.budget =
        result.dcPowerPre.peak() * (1.0 + inputs_.headroomFraction);

    // ---- Sizing of the post-optimization fleet ------------------------
    const bool throttle_boost =
        config_.mode == ReshapeMode::ConversionThrottleBoost;
    if (throttle_boost && inputs_.batchServers > 0) {
        // Power freed at the worst minute by throttling every Batch
        // server funds the extra tranche e_th of conversion servers.
        const double freed =
            n_batch * (inputs_.batchDvfs.powerAt(1.0) -
                       inputs_.batchDvfs.powerAt(config_.throttleFrequency));
        const double lc_peak_power = lc_server_power(1.0);
        result.throttleExtraServers = static_cast<std::size_t>(
            std::floor(freed / lc_peak_power));
    }

    // Traffic growth the datacenter absorbs: the unlocked headroom by
    // default (the paper sizes added traffic to added capacity), plus
    // whatever the throttling-funded servers can serve on top.
    const double base_growth = config_.trafficGrowth >= 0.0
        ? config_.trafficGrowth
        : inputs_.headroomFraction;
    const double growth =
        base_growth + static_cast<double>(result.throttleExtraServers) /
                          n_lc;

    // Headroom-funded servers: enough conversion (or LC-only) capacity
    // to keep the grown peak at the guarded load level.
    result.extraServers =
        static_cast<std::size_t>(std::ceil(base_growth * n_lc));

    if (config_.mode == ReshapeMode::PreSmoothOperator) {
        // Post == pre; metrics stay at zero.
        result.perLcLoadPost = result.perLcLoadPre;
        result.lcThroughputPost = result.lcThroughputPre;
        result.batchThroughputPost = result.batchThroughputPre;
        result.dcPowerPost = result.dcPowerPre;
        ConversionPolicy policy(inputs_.trainingLoad, config_.conversion);
        result.conversionThreshold = policy.conversionThreshold();
        return result;
    }

    // ---- Post-SmoothOperator week -------------------------------------
    ConversionPolicy policy(inputs_.trainingLoad, config_.conversion);
    result.conversionThreshold = policy.conversionThreshold();
    policy.reset();

    // Headroom-funded conversion servers flip between LC and Batch; the
    // throttling-funded tranche e_th only absorbs LC-heavy peaks (during
    // the Batch-heavy phase the budget it borrowed belongs to the
    // boosted Batch fleet, so it idles).
    const double e_conv = config_.mode == ReshapeMode::AddLcOnly
        ? 0.0
        : static_cast<double>(result.extraServers);
    const double e_th =
        static_cast<double>(result.throttleExtraServers);
    const double lc_fixed_extra = config_.mode == ReshapeMode::AddLcOnly
        ? static_cast<double>(result.extraServers)
        : 0.0;

    std::vector<double> load_post(n), lc_thr_post(n), batch_thr_post(n),
        power_post(n);
    std::size_t lc_heavy_steps = 0;
    std::size_t qos_violations = 0;
    std::size_t throttle_steps = 0;
    std::size_t boost_steps = 0;

    for (std::size_t t = 0; t < n; ++t) {
        const double demand = n_lc * inputs_.testLoad[t] * (1.0 + growth);
        const double load_orig = demand / n_lc;

        const Phase phase = policy.step(load_orig);
        if (phase == Phase::LcHeavy)
            ++lc_heavy_steps;

        const double conv_lc = (e_conv + e_th) * policy.lcFraction();
        // Conversion servers only do batch work the batch tier has
        // queued; the rest idle until the next LC-heavy phase.
        const double batch_work_cap =
            config_.batchExpandFraction * n_batch;
        const double conv_batch =
            std::min(e_conv * (1.0 - policy.lcFraction()),
                     batch_work_cap);
        const double th_idle = (e_conv + e_th) * (1.0 - policy.lcFraction()) -
                               conv_batch;
        const double active_lc = n_lc + lc_fixed_extra + conv_lc;

        const double per_load = std::min(demand / active_lc, 1.0);
        load_post[t] = per_load;
        lc_thr_post[t] = std::min(demand, active_lc);
        if (per_load > result.conversionThreshold + 1e-12)
            ++qos_violations;

        // Batch frequency policy.
        double f = 1.0;
        if (throttle_boost && inputs_.batchServers > 0) {
            if (phase == Phase::LcHeavy) {
                f = config_.throttleFrequency;
                ++throttle_steps;
            } else {
                // Boost up to the budget: spend the instantaneous slack
                // on raising Batch frequency.
                const double power_at_one =
                    active_lc * lc_server_power(per_load) +
                    n_batch * inputs_.batchDvfs.powerAt(1.0) +
                    conv_batch * inputs_.batchDvfs.powerAt(1.0) +
                    th_idle * lc_server_power(0.0) +
                    inputs_.otherPower[t];
                const double slack = result.budget - power_at_one;
                if (slack > 0.0) {
                    const double per_server =
                        inputs_.batchDvfs.powerAt(1.0) + slack / n_batch;
                    f = std::min(config_.boostMaxFrequency,
                                 inputs_.batchDvfs.frequencyForPower(
                                     per_server));
                    if (f > 1.0)
                        ++boost_steps;
                }
            }
        }

        batch_thr_post[t] = n_batch * inputs_.batchDvfs.throughputAt(f) +
                            conv_batch * 1.0;
        power_post[t] = active_lc * lc_server_power(per_load) +
                        n_batch * inputs_.batchDvfs.powerAt(f) +
                        conv_batch * inputs_.batchDvfs.powerAt(1.0) +
                        th_idle * lc_server_power(0.0) +
                        inputs_.otherPower[t];
    }

    result.perLcLoadPost = trace::TimeSeries(load_post, interval);
    result.lcThroughputPost = trace::TimeSeries(lc_thr_post, interval);
    result.batchThroughputPost =
        trace::TimeSeries(batch_thr_post, interval);
    result.dcPowerPost = trace::TimeSeries(power_post, interval);
    result.lcHeavyFraction =
        static_cast<double>(lc_heavy_steps) / static_cast<double>(n);
    result.qosViolationFraction =
        static_cast<double>(qos_violations) / static_cast<double>(n);
    SOSIM_COUNT_ADD("sim.reshape.throttle_steps", throttle_steps);
    SOSIM_COUNT_ADD("sim.reshape.boost_steps", boost_steps);
    SOSIM_COUNT_ADD("sim.reshape.qos_violations", qos_violations);

    // ---- Summary metrics ----------------------------------------------
    const double lc_pre_total = result.lcThroughputPre.sum();
    const double lc_post_total = result.lcThroughputPost.sum();
    SOSIM_ASSERT(lc_pre_total > 0.0, "ReshapeSimulator: zero LC demand");
    result.lcThroughputGain = lc_post_total / lc_pre_total - 1.0;

    if (inputs_.batchServers > 0) {
        const double batch_pre_total = result.batchThroughputPre.sum();
        result.batchThroughputGain =
            result.batchThroughputPost.sum() / batch_pre_total - 1.0;
    }

    // Slack metrics against the fixed budget.
    double slack_pre_sum = 0.0, slack_post_sum = 0.0;
    double slack_pre_off = 0.0, slack_post_off = 0.0;
    std::size_t off_count = 0;
    const double off_cutoff = result.dcPowerPre.percentile(50.0);
    for (std::size_t t = 0; t < n; ++t) {
        const double sp = result.budget - power_pre[t];
        const double so = result.budget - power_post[t];
        slack_pre_sum += sp;
        slack_post_sum += so;
        if (power_pre[t] <= off_cutoff) {
            slack_pre_off += sp;
            slack_post_off += so;
            ++off_count;
        }
    }
    if (slack_pre_sum > 0.0)
        result.averageSlackReduction = 1.0 - slack_post_sum / slack_pre_sum;
    if (off_count > 0 && slack_pre_off > 0.0)
        result.offPeakSlackReduction = 1.0 - slack_post_off / slack_pre_off;

    return result;
}

ReshapeInputs
buildReshapeInputs(const workload::GeneratedDatacenter &dc,
                   double headroom_fraction, double baseline_peak_load)
{
    SOSIM_REQUIRE(baseline_peak_load > 0.0 && baseline_peak_load <= 1.0,
                  "buildReshapeInputs: peak load must be in (0, 1]");
    const auto &spec = dc.spec();
    const int weeks = spec.weeks;
    const int train_weeks = std::max(1, weeks - 1);
    const int test_week = weeks - 1;

    ReshapeInputs inputs;
    inputs.headroomFraction = headroom_fraction;

    // Fleet census and the LC demand mix.
    double lc_idle_weighted = 0.0;
    trace::TimeSeries train_raw, test_raw;
    bool have_lc = false;
    std::vector<std::size_t> other_instances;
    for (std::size_t s = 0; s < dc.serviceCount(); ++s) {
        const auto &profile = dc.serviceProfile(s);
        const auto members = dc.instancesOfService(s);
        const double count = static_cast<double>(members.size());
        if (profile.klass == workload::ServiceClass::LatencyCritical) {
            inputs.lcServers += members.size();
            lc_idle_weighted += profile.idleFraction * count;
            // Average activity over the training weeks.
            trace::TimeSeries train_act = dc.serviceActivity(s, 0);
            for (int w = 1; w < train_weeks; ++w)
                train_act += dc.serviceActivity(s, w);
            train_act *= 1.0 / static_cast<double>(train_weeks);

            trace::TimeSeries weighted_train = train_act;
            weighted_train *= count;
            trace::TimeSeries weighted_test =
                dc.serviceActivity(s, test_week);
            weighted_test *= count;
            if (!have_lc) {
                train_raw = std::move(weighted_train);
                test_raw = std::move(weighted_test);
                have_lc = true;
            } else {
                train_raw += weighted_train;
                test_raw += weighted_test;
            }
        } else if (profile.klass == workload::ServiceClass::Batch) {
            inputs.batchServers += members.size();
        } else {
            inputs.otherServers += members.size();
            other_instances.insert(other_instances.end(), members.begin(),
                                   members.end());
        }
    }
    SOSIM_REQUIRE(have_lc, "buildReshapeInputs: datacenter hosts no LC");
    inputs.lcIdleFraction =
        lc_idle_weighted / static_cast<double>(inputs.lcServers);

    // Normalize: per-server load, training peak at baseline_peak_load.
    const double n_lc = static_cast<double>(inputs.lcServers);
    train_raw *= 1.0 / n_lc;
    test_raw *= 1.0 / n_lc;
    const double scale = baseline_peak_load / train_raw.peak();
    train_raw *= scale;
    test_raw *= scale;
    test_raw.clamp(0.0, 1.0);
    inputs.trainingLoad = std::move(train_raw);
    inputs.testLoad = std::move(test_raw);

    // Fixed power of the storage/infra fleet in the test week.
    if (other_instances.empty()) {
        inputs.otherPower = trace::TimeSeries::zeros(
            inputs.testLoad.size(), inputs.testLoad.intervalMinutes());
    } else {
        std::vector<const trace::TimeSeries *> traces;
        traces.reserve(other_instances.size());
        for (const auto i : other_instances)
            traces.push_back(&dc.weekTrace(i, test_week));
        inputs.otherPower = trace::sumSeries(traces);
    }

    return inputs;
}

} // namespace sosim::sim
