#ifndef SOSIM_SIM_RESHAPE_H
#define SOSIM_SIM_RESHAPE_H

/**
 * @file
 * Dynamic power profile reshaping runtime (section 4 of the paper).
 *
 * The simulator plays the held-out test week minute by minute at
 * datacenter scope.  The workload-aware placement has unlocked
 * `headroomFraction` extra budget, which is spent on extra servers:
 *
 *  - AddLcOnly: the extra servers are LC-specific (the strawman of
 *    section 4.1 — underutilized off-peak).
 *  - Conversion: the extra servers are storage-disaggregated conversion
 *    servers driven by the history-based ConversionPolicy.
 *  - ConversionThrottleBoost: additionally, Batch is proactively
 *    throttled during the LC-heavy phase (funding an extra tranche of
 *    conversion servers) and boosted up to the budget during the
 *    Batch-heavy phase.
 *
 * Outputs are the time series and summary statistics behind Figures 12,
 * 13 and 14.
 */

#include <cstddef>
#include <string>

#include "sim/conversion.h"
#include "sim/dvfs.h"
#include "trace/time_series.h"
#include "workload/generator.h"

namespace sosim::sim {

/** Which reshaping strategy the runtime applies. */
enum class ReshapeMode {
    /** No extra servers: the pre-SmoothOperator datacenter. */
    PreSmoothOperator,
    /** Spend the headroom on LC-only servers (section 4.1 strawman). */
    AddLcOnly,
    /** History-based server conversion (section 4.2). */
    Conversion,
    /** Conversion plus proactive throttling and boosting. */
    ConversionThrottleBoost,
};

/** Printable mode name. */
std::string reshapeModeName(ReshapeMode mode);

/** Workload-side inputs of the runtime (see buildReshapeInputs). */
struct ReshapeInputs {
    /** Original LC fleet size. */
    std::size_t lcServers = 0;
    /** Original Batch fleet size. */
    std::size_t batchServers = 0;
    /** Servers outside LC/Batch (storage, infra). */
    std::size_t otherServers = 0;
    /** Per-LC-server load of the training week (original traffic). */
    trace::TimeSeries trainingLoad;
    /** Per-LC-server load of the test week (original traffic). */
    trace::TimeSeries testLoad;
    /** Fixed aggregate power of the storage/infra fleet (test week). */
    trace::TimeSeries otherPower;
    /** Idle fraction of an LC server's power curve. */
    double lcIdleFraction = 0.30;
    /** DVFS behaviour of Batch servers. */
    DvfsModel batchDvfs;
    /** Budget fraction unlocked by the placement step. */
    double headroomFraction = 0.10;
};

/** Policy knobs of the runtime. */
struct ReshapeConfig {
    ReshapeMode mode = ReshapeMode::Conversion;
    ConversionConfig conversion;
    /**
     * Traffic growth the datacenter must absorb; negative means "grow by
     * exactly the unlocked headroom" (the paper sizes the added traffic
     * to the added capacity).
     */
    double trafficGrowth = -1.0;
    /** Batch frequency during LC-heavy phase (ConversionThrottleBoost). */
    double throttleFrequency = 0.95;
    /** Boost-frequency ceiling during Batch-heavy phase. */
    double boostMaxFrequency = 1.10;
    /**
     * Extra batch capacity (as a fraction of the original Batch fleet)
     * that the batch workload can actually absorb.  Conversion servers
     * beyond this cap idle during the Batch-heavy phase: a datacenter
     * whose batch tier is small (the paper's DC3) cannot put every
     * conversion server to batch work.
     */
    double batchExpandFraction = 0.20;
};

/** Everything the benches need to draw Figures 12-14. */
struct ReshapeResult {
    // --- Time series over the test week ------------------------------
    trace::TimeSeries perLcLoadPre;
    trace::TimeSeries perLcLoadPost;
    trace::TimeSeries lcThroughputPre;   ///< Served LC demand (server units).
    trace::TimeSeries lcThroughputPost;
    trace::TimeSeries batchThroughputPre; ///< Batch work rate (server units).
    trace::TimeSeries batchThroughputPost;
    trace::TimeSeries dcPowerPre;
    trace::TimeSeries dcPowerPost;

    // --- Configuration echoes ----------------------------------------
    double budget = 0.0;               ///< Fixed DC power budget.
    double conversionThreshold = 0.0;  ///< Learned L_conv.
    std::size_t extraServers = 0;      ///< Headroom-funded servers.
    std::size_t throttleExtraServers = 0; ///< Throttling-funded servers.

    // --- Summary metrics ----------------------------------------------
    /** Total served LC demand, post / pre - 1. */
    double lcThroughputGain = 0.0;
    /** Total Batch work, post / pre - 1. */
    double batchThroughputGain = 0.0;
    /** 1 - mean(slack_post) / mean(slack_pre). */
    double averageSlackReduction = 0.0;
    /** Same, restricted to off-peak samples (pre-power lower half). */
    double offPeakSlackReduction = 0.0;
    /** Fraction of steps where post per-LC-server load exceeds L_conv. */
    double qosViolationFraction = 0.0;
    /** Fraction of steps spent in the LC-heavy phase. */
    double lcHeavyFraction = 0.0;
};

/** The datacenter-scope reshaping runtime. */
class ReshapeSimulator
{
  public:
    ReshapeSimulator(ReshapeInputs inputs, ReshapeConfig config);

    /** Play the test week and return every series and summary metric. */
    ReshapeResult run() const;

    const ReshapeInputs &inputs() const { return inputs_; }
    const ReshapeConfig &config() const { return config_; }

  private:
    ReshapeInputs inputs_;
    ReshapeConfig config_;
};

/**
 * Derive ReshapeInputs from a generated datacenter.
 *
 * The LC demand curve is the instance-count-weighted mix of the LC
 * services' activity curves, normalized so that the training week peaks
 * at `baseline_peak_load` per server (the fleet was provisioned to keep
 * QoS at the historical peak).
 *
 * @param dc                 Generated datacenter.
 * @param headroom_fraction  Budget fraction unlocked by placement (from
 *                           core::HeadroomReport::extraServerFraction).
 * @param baseline_peak_load Historical per-server peak load.
 */
ReshapeInputs buildReshapeInputs(const workload::GeneratedDatacenter &dc,
                                 double headroom_fraction,
                                 double baseline_peak_load = 0.9);

} // namespace sosim::sim

#endif // SOSIM_SIM_RESHAPE_H
