#include "dvfs.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace sosim::sim {

DvfsModel::DvfsModel(double idle_fraction, double exponent,
                     double min_frequency, double max_frequency)
    : idleFraction_(idle_fraction), exponent_(exponent),
      minFrequency_(min_frequency), maxFrequency_(max_frequency)
{
    SOSIM_REQUIRE(idle_fraction >= 0.0 && idle_fraction < 1.0,
                  "DvfsModel: idle fraction must be in [0, 1)");
    SOSIM_REQUIRE(exponent >= 1.0, "DvfsModel: exponent must be >= 1");
    SOSIM_REQUIRE(min_frequency > 0.0 && min_frequency <= 1.0,
                  "DvfsModel: min frequency must be in (0, 1]");
    SOSIM_REQUIRE(max_frequency >= 1.0,
                  "DvfsModel: max frequency must be >= 1");
}

double
DvfsModel::powerAt(double frequency) const
{
    const double f =
        std::clamp(frequency, minFrequency_, maxFrequency_);
    return idleFraction_ + (1.0 - idleFraction_) * std::pow(f, exponent_);
}

double
DvfsModel::throughputAt(double frequency) const
{
    return std::clamp(frequency, minFrequency_, maxFrequency_);
}

double
DvfsModel::frequencyForPower(double power) const
{
    if (power >= powerAt(maxFrequency_))
        return maxFrequency_;
    if (power <= powerAt(minFrequency_))
        return minFrequency_;
    const double dynamic =
        (power - idleFraction_) / (1.0 - idleFraction_);
    return std::pow(dynamic, 1.0 / exponent_);
}

} // namespace sosim::sim
