#ifndef SOSIM_SIM_CONVERSION_H
#define SOSIM_SIM_CONVERSION_H

/**
 * @file
 * History-based server conversion policy (section 4.2).
 *
 * The policy learns a guarded per-LC-server load level L_conv from the
 * training week (the load at which LC still met QoS historically), then
 * at runtime classifies each step as Batch-heavy (average LC load over
 * the original LC servers below L_conv: conversion servers run Batch) or
 * LC-heavy (load approaching L_conv: conversion servers flip to LC).
 * A small hysteresis band prevents flapping, and conversions take a
 * configurable number of steps to complete.
 */

#include <cstddef>

#include "trace/time_series.h"

namespace sosim::sim {

/** Datacenter phase as defined by the conversion policy. */
enum class Phase {
    BatchHeavy,
    LcHeavy,
};

/** Parameters of the conversion policy. */
struct ConversionConfig {
    /**
     * Margin below the learned guarded load at which conversion to LC is
     * triggered ("when this average LC load increases to a level close
     * to L_conv"): enter LC-heavy at L_conv * (1 - enterMargin).
     */
    double enterMargin = 0.05;
    /** Hysteresis: leave LC-heavy at L_conv * (1 - enterMargin - width). */
    double hysteresisWidth = 0.03;
    /** Steps a conversion takes to complete (role-flip latency). */
    int conversionDelaySteps = 1;
};

/** The history-based conversion policy. */
class ConversionPolicy
{
  public:
    /**
     * Learn L_conv from the training week.
     *
     * @param training_load Per-LC-server load trace of the training week
     *                      (original servers, original traffic).
     * @param config        Policy parameters.
     */
    ConversionPolicy(const trace::TimeSeries &training_load,
                     ConversionConfig config = {});

    /** The learned guarded load level. */
    double conversionThreshold() const { return lConv_; }

    /** Reset runtime state (phase and pending conversions). */
    void reset();

    /**
     * Advance one step.
     *
     * @param original_lc_load Average load the *original* LC fleet would
     *                         see at this step (demand / N_lc).
     * @return The phase in effect for this step.
     */
    Phase step(double original_lc_load);

    /** Phase currently in effect. */
    Phase phase() const { return effective_; }

    /**
     * Fraction of conversion servers currently serving LC (ramps over
     * conversionDelaySteps when the phase flips).
     */
    double lcFraction() const { return lcFraction_; }

  private:
    double lConv_;
    ConversionConfig config_;
    Phase target_ = Phase::BatchHeavy;
    Phase effective_ = Phase::BatchHeavy;
    double lcFraction_ = 0.0;
};

} // namespace sosim::sim

#endif // SOSIM_SIM_CONVERSION_H
