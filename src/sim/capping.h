#ifndef SOSIM_SIM_CAPPING_H
#define SOSIM_SIM_CAPPING_H

/**
 * @file
 * Hierarchical, priority-aware power capping.
 *
 * The paper's introduction argues that capping solutions (Dynamo [51],
 * SHIP [50], ...) are the standard answer to Challenge 1 but are crippled
 * by power budget fragmentation: a leaf node hosting only synchronous
 * latency-critical instances must cap LC work even while sibling nodes
 * sit on unused budget.  This module reproduces that mechanism: per-node
 * budgets, batch-first capping, LC capped only as a last resort, and
 * accounting of the curtailed energy per class — so the benches can show
 * how much less capping the workload-aware placement needs.
 */

#include <cstddef>
#include <vector>

#include "power/power_tree.h"
#include "trace/time_series.h"

namespace sosim::sim {

/** Capping priority class of an instance (lower = capped first). */
enum class CapClass {
    Batch = 0,          ///< Capped first (throughput impact only).
    Storage = 1,        ///< Capped next (delays backups).
    LatencyCritical = 2 ///< Capped last (QoS violation).
};

/** Parameters of the capper. */
struct CappingConfig {
    /**
     * Fraction of a class's power that capping can remove at a node
     * (DVFS floor): capping Batch at 0.4 can shave at most 40% of the
     * Batch power under the node at that minute.
     */
    double maxBatchShave = 0.40;
    double maxStorageShave = 0.25;
    double maxLcShave = 0.20;
};

/** Per-node capping outcome over the evaluated trace window. */
struct NodeCappingStats {
    power::NodeId node = power::kNoNode;
    /** Samples at which the node exceeded its budget pre-capping. */
    std::size_t overloadSamples = 0;
    /** Samples at which capping could not reach the budget at all. */
    std::size_t unresolvedSamples = 0;
    /** Energy removed from each class (power units x minutes). */
    double batchCurtailed = 0.0;
    double storageCurtailed = 0.0;
    double lcCurtailed = 0.0;
};

/** Aggregate capping outcome. */
struct CappingReport {
    std::vector<NodeCappingStats> perNode;
    /** Totals across all capped nodes. */
    double batchCurtailed = 0.0;
    double storageCurtailed = 0.0;
    double lcCurtailed = 0.0;
    std::size_t overloadSamples = 0;
    std::size_t unresolvedSamples = 0;

    /** Total curtailed energy across classes. */
    double
    totalCurtailed() const
    {
        return batchCurtailed + storageCurtailed + lcCurtailed;
    }
};

/**
 * Evaluate capping at one level of the power tree.
 *
 * For every node at `level`, the per-class aggregate power under the
 * node is computed from the placement; whenever the total exceeds the
 * node's budget, the overage is shaved Batch -> Storage -> LC, bounded
 * by each class's shave limit.
 *
 * @param tree        Power infrastructure.
 * @param itraces     Power trace of every instance.
 * @param assignment  Placement.
 * @param cap_class   Capping class of every instance.
 * @param budgets     Budget of every node (indexed by NodeId); nodes at
 *                    other levels are ignored.
 * @param level       Level at which breakers and budgets live.
 * @param config      Shave limits.
 */
CappingReport
evaluateCapping(const power::PowerTree &tree,
                const std::vector<trace::TimeSeries> &itraces,
                const power::Assignment &assignment,
                const std::vector<CapClass> &cap_class,
                const std::vector<double> &budgets, power::Level level,
                const CappingConfig &config = {});

} // namespace sosim::sim

#endif // SOSIM_SIM_CAPPING_H
