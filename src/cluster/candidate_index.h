#ifndef SOSIM_CLUSTER_CANDIDATE_INDEX_H
#define SOSIM_CLUSTER_CANDIDATE_INDEX_H

/**
 * @file
 * Cluster-pruned candidate pairs for the remap swap search.
 *
 * The exhaustive swap scan evaluates every (candidate, partner) pair —
 * O(n) kernel passes per candidate, O(n^2) over a refinement run.  At
 * fleet scale that is the dominant cost, yet most pairs are hopeless:
 * a swap only helps when the two instances' diurnal shapes are
 * *asynchronous*, and instances whose shapes fall in the same k-means
 * cluster of the embedding space are by construction synchronous (that
 * is exactly the property the placement stage exploits, section 3.5 of
 * the paper).
 *
 * CandidatePairIndex clusters the population once per refine() call and
 * precomputes, for every cluster, the set of *partner clusters worth
 * scanning*: the keepFraction farthest clusters by centroid distance —
 * cross-cluster pairs, where asynchronous partners live.  The swap scan
 * then asks allowed(clusterOf(a), clusterOf(b)) — one O(1) bitmap probe
 * — before any kernel pass runs, cutting the evaluated pair space to
 * roughly keepFraction * n per candidate.
 *
 * Soundness: pruning only *restricts* the searched pair space; every
 * accepted swap still passes the paper's improve-at-both-nodes test, so
 * a pruned refinement is always a valid (possibly slightly less
 * improving) refinement.  tests/test_prune.cc pins the final-score gap
 * against exhaustive search to a fixed epsilon and the k = 1 /
 * keepFraction = 1 configurations to exact parity (a single cluster
 * keeps itself, so nothing is pruned).
 */

#include <cstdint>
#include <vector>

#include "cluster/kmeans.h"

namespace sosim::cluster {

/** Parameters of the candidate-pair index. */
struct CandidateIndexConfig {
    /**
     * Cluster count; 0 picks automatically: ceil(sqrt(n)) clamped to
     * [2, 32] (and never more than n).  Small k keeps the clustering
     * itself far below the pair-scan cost it prunes.
     */
    std::size_t clusters = 0;
    /**
     * Fraction of clusters each candidate scans, farthest first, in
     * (0, 1]; at least one partner cluster is always kept.  1.0 keeps
     * every cluster (pruning disabled, exact parity).
     */
    double keepFraction = 0.5;
    /** Seed for the k-means run. */
    std::uint64_t seed = 42;
    /** Lloyd iteration cap; the index needs rough clusters, not
     *  converged ones. */
    int maxIterations = 8;
};

/**
 * The pruning structure: a k-means clustering of the population plus a
 * per-cluster bitmap of partner clusters worth scanning.
 */
class CandidatePairIndex
{
  public:
    /**
     * Cluster `points` (one embedding point per instance, shared
     * dimension) and precompute the partner bitmaps.  Deterministic for
     * fixed inputs and config.
     */
    static CandidatePairIndex build(const std::vector<Point> &points,
                                    const CandidateIndexConfig &config);

    /** Number of clusters. */
    std::size_t clusterCount() const { return k_; }

    /** Cluster of instance i. */
    std::size_t clusterOf(std::size_t i) const { return assignment_[i]; }

    /** Partner clusters kept per cluster (ceil(keepFraction * k)). */
    std::size_t keptPerCluster() const { return kept_; }

    /**
     * True when partners in cluster `cb` should be evaluated for a
     * candidate in cluster `ca` (O(1)).
     */
    bool allowed(std::size_t ca, std::size_t cb) const
    {
        return allowed_[ca * k_ + cb] != 0;
    }

  private:
    std::size_t k_ = 0;
    std::size_t kept_ = 0;
    std::vector<std::size_t> assignment_;
    /** Row-major k x k bitmap: allowed_[ca * k + cb]. */
    std::vector<std::uint8_t> allowed_;
};

/**
 * The default embedding remap uses for pruning: every trace downsampled
 * to `buckets` bucket means and normalized by its peak, so the point
 * captures the diurnal *shape* (when the instance draws power) and
 * discards magnitude.  One pass per trace; rows fan out via
 * util::parallelFor with per-slot writes (bit-identical for any thread
 * count).  Zero-power traces embed as the origin.
 */
std::vector<Point> shapePoints(const std::vector<const double *> &rows,
                               std::size_t samples, std::size_t buckets);

} // namespace sosim::cluster

#endif // SOSIM_CLUSTER_CANDIDATE_INDEX_H
