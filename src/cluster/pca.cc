#include "pca.h"

#include <cmath>

#include "util/error.h"

namespace sosim::cluster {

namespace {

/** Multiply the (implicit) covariance matrix by vector v. */
Point
covarianceTimes(const std::vector<Point> &centered, const Point &v)
{
    const std::size_t dim = v.size();
    Point out(dim, 0.0);
    for (const auto &row : centered) {
        double dot = 0.0;
        for (std::size_t d = 0; d < dim; ++d)
            dot += row[d] * v[d];
        for (std::size_t d = 0; d < dim; ++d)
            out[d] += dot * row[d];
    }
    const double scale = 1.0 / static_cast<double>(centered.size());
    for (auto &x : out)
        x *= scale;
    return out;
}

double
norm(const Point &v)
{
    double acc = 0.0;
    for (const auto x : v)
        acc += x * x;
    return std::sqrt(acc);
}

} // namespace

PcaResult
pca(const std::vector<Point> &points, std::size_t components, int iterations)
{
    SOSIM_REQUIRE(!points.empty(), "pca: need at least one point");
    const std::size_t dim = points.front().size();
    SOSIM_REQUIRE(components >= 1 && components <= dim,
                  "pca: component count must be in [1, dimension]");
    for (const auto &p : points)
        SOSIM_REQUIRE(p.size() == dim, "pca: inconsistent dimensions");

    // Center the data.
    Point mean(dim, 0.0);
    for (const auto &p : points)
        for (std::size_t d = 0; d < dim; ++d)
            mean[d] += p[d];
    for (auto &m : mean)
        m /= static_cast<double>(points.size());
    std::vector<Point> centered(points);
    for (auto &p : centered)
        for (std::size_t d = 0; d < dim; ++d)
            p[d] -= mean[d];

    PcaResult result;
    for (std::size_t c = 0; c < components; ++c) {
        // Deterministic start vector, orthogonal-ish across components.
        Point v(dim, 0.0);
        v[c % dim] = 1.0;
        if (dim > 1)
            v[(c + 1) % dim] = 0.5;

        double eigenvalue = 0.0;
        for (int it = 0; it < iterations; ++it) {
            Point w = covarianceTimes(centered, v);
            // Deflate: remove already-found components.
            for (const auto &prev : result.components) {
                double dot = 0.0;
                for (std::size_t d = 0; d < dim; ++d)
                    dot += w[d] * prev[d];
                for (std::size_t d = 0; d < dim; ++d)
                    w[d] -= dot * prev[d];
            }
            const double len = norm(w);
            if (len < 1e-15) {
                // No variance left in this direction.
                w.assign(dim, 0.0);
                v = w;
                eigenvalue = 0.0;
                break;
            }
            for (auto &x : w)
                x /= len;
            v = std::move(w);
            eigenvalue = len;
        }
        result.components.push_back(v);
        result.explainedVariance.push_back(eigenvalue);
    }

    result.projected.assign(points.size(), Point(components, 0.0));
    for (std::size_t i = 0; i < points.size(); ++i)
        for (std::size_t c = 0; c < components; ++c) {
            double dot = 0.0;
            for (std::size_t d = 0; d < dim; ++d)
                dot += centered[i][d] * result.components[c][d];
            result.projected[i][c] = dot;
        }
    return result;
}

} // namespace sosim::cluster
