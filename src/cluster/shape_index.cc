#include "shape_index.h"

#include <cmath>
#include <cstring>

#include "cluster/candidate_index.h"
#include "util/error.h"

namespace sosim::cluster {

namespace {

// FNV-1a, the same constants graph::fnv1a64 uses; local so the cluster
// library stays independent of the graph layer it feeds.
constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t
mixWord(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= kFnvPrime;
    }
    return h;
}

std::uint64_t
fingerprintIndex(const std::vector<Point> &points, std::size_t samples,
                 std::size_t buckets)
{
    std::uint64_t h = kFnvOffset;
    h = mixWord(h, samples);
    h = mixWord(h, buckets);
    h = mixWord(h, points.size());
    for (const auto &p : points) {
        h = mixWord(h, p.size());
        for (const double v : p) {
            std::uint64_t bits;
            static_assert(sizeof(bits) == sizeof(v));
            std::memcpy(&bits, &v, sizeof(bits));
            h = mixWord(h, bits);
        }
    }
    return h;
}

} // namespace

ShapeIndex
ShapeIndex::build(const std::vector<const double *> &rows,
                  std::size_t samples, std::size_t buckets)
{
    ShapeIndex index;
    index.samples_ = samples;
    index.buckets_ = buckets;
    if (!rows.empty())
        index.points_ = shapePoints(rows, samples, buckets);
    index.fingerprint_ =
        fingerprintIndex(index.points_, samples, buckets);
    return index;
}

ShapeIndex
ShapeIndex::fromPoints(std::vector<Point> points, std::size_t samples,
                       std::size_t buckets)
{
    ShapeIndex index;
    index.samples_ = samples;
    index.buckets_ = buckets;
    index.points_ = std::move(points);
    index.fingerprint_ =
        fingerprintIndex(index.points_, samples, buckets);
    return index;
}

const Point &
ShapeIndex::point(std::size_t i) const
{
    SOSIM_REQUIRE(i < points_.size(), "ShapeIndex::point: out of range");
    return points_[i];
}

double
ShapeIndex::meanDriftFrom(const ShapeIndex &other) const
{
    const std::size_t n = std::min(points_.size(), other.points_.size());
    if (n == 0)
        return 0.0;
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        total += std::sqrt(
            squaredDistance(points_[i], other.points_[i]));
    return total / static_cast<double>(n);
}

} // namespace sosim::cluster
