#include "candidate_index.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/parallel.h"

namespace sosim::cluster {

CandidatePairIndex
CandidatePairIndex::build(const std::vector<Point> &points,
                          const CandidateIndexConfig &config)
{
    SOSIM_REQUIRE(!points.empty(),
                  "CandidatePairIndex: no points to cluster");
    SOSIM_REQUIRE(config.keepFraction > 0.0 &&
                      config.keepFraction <= 1.0,
                  "CandidatePairIndex: keepFraction must be in (0, 1]");
    const std::size_t n = points.size();

    CandidatePairIndex index;
    std::size_t k = config.clusters;
    if (k == 0) {
        const auto root = static_cast<std::size_t>(
            std::ceil(std::sqrt(static_cast<double>(n))));
        k = std::clamp<std::size_t>(root, 2, 32);
    }
    k = std::min(k, n);
    index.k_ = k;

    KMeansConfig kc;
    kc.k = k;
    kc.maxIterations = config.maxIterations;
    kc.tolerance = 1e-4; // Rough clusters suffice for pruning.
    kc.restarts = 1;
    kc.seed = config.seed;
    KMeansResult result = kMeans(points, kc);
    index.assignment_ = std::move(result.assignment);

    // Partner bitmap: for every cluster keep the `kept` farthest
    // clusters by centroid distance (descending; ties broken by the
    // lower cluster id so the bitmap is deterministic).  A cluster's
    // own distance is 0, so it is pruned first — cross-cluster pairs
    // are where asynchronous partners live — except in the k = 1 and
    // keepFraction = 1 configurations, which keep everything.
    index.kept_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(config.keepFraction * static_cast<double>(k))));
    index.kept_ = std::min(index.kept_, k);
    index.allowed_.assign(k * k, 0);
    std::vector<std::pair<double, std::size_t>> order(k);
    for (std::size_t ca = 0; ca < k; ++ca) {
        for (std::size_t cb = 0; cb < k; ++cb)
            order[cb] = {-squaredDistance(result.centroids[ca],
                                          result.centroids[cb]),
                         cb};
        std::sort(order.begin(), order.end());
        for (std::size_t r = 0; r < index.kept_; ++r)
            index.allowed_[ca * k + order[r].second] = 1;
    }
    return index;
}

std::vector<Point>
shapePoints(const std::vector<const double *> &rows, std::size_t samples,
            std::size_t buckets)
{
    SOSIM_REQUIRE(samples > 0 && buckets > 0,
                  "shapePoints: empty traces or zero buckets");
    const std::size_t dim = std::min(buckets, samples);
    std::vector<Point> points(rows.size(), Point(dim, 0.0));
    util::parallelFor(rows.size(), [&](std::size_t i) {
        const double *row = rows[i];
        Point &p = points[i];
        double peak = 0.0;
        for (std::size_t b = 0; b < dim; ++b) {
            const std::size_t lo = b * samples / dim;
            const std::size_t hi = (b + 1) * samples / dim;
            double sum = 0.0;
            for (std::size_t s = lo; s < hi; ++s)
                sum += row[s];
            p[b] = sum / static_cast<double>(hi - lo);
            peak = std::max(peak, p[b]);
        }
        if (peak > 0.0)
            for (double &v : p)
                v /= peak;
        // Zero-power traces stay at the origin.
    });
    return points;
}

} // namespace sosim::cluster
