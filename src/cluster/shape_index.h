#ifndef SOSIM_CLUSTER_SHAPE_INDEX_H
#define SOSIM_CLUSTER_SHAPE_INDEX_H

/**
 * @file
 * A shared, fingerprinted store of diurnal-shape embeddings.
 *
 * Several consumers embed every instance's trace as a small normalized
 * shape vector (see shapePoints): the remap pruner clusters the shapes
 * to skip synchronous swap partners, fleet-scale placement can cluster
 * them directly instead of paying the |B|-kernel-pass score-vector
 * embedding, and the fragmentation monitor compares a week's shapes
 * against the training shapes to quantify workload drift.  Before the
 * ShapeIndex each of those call sites recomputed the embedding from the
 * raw traces on every call; now the index is built once per trace
 * population and passed around by const reference.
 *
 * The index carries a content fingerprint (FNV-1a over the embedding
 * parameters and every point's IEEE-754 bits, the same construction the
 * op graph uses for Values), so it can flow along graph edges as a
 * cached op output: two indexes with equal fingerprints embed identical
 * populations identically.
 *
 * Determinism: build() delegates to shapePoints, which fans rows out
 * over util::parallelFor with per-slot writes — bit-identical points
 * for any thread count — and the fingerprint is computed serially in
 * row order afterwards.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/kmeans.h"

namespace sosim::cluster {

/**
 * Default bucket count of the shape embedding: enough resolution to
 * separate day/night/evening phases without making the embedding pass
 * or the k-means over it noticeable next to the kernel work it saves.
 * (Previously a private constant of core::remap; hoisted here so every
 * consumer of one ShapeIndex agrees on the embedding dimension.)
 */
inline constexpr std::size_t kDefaultShapeBuckets = 16;

/**
 * An immutable population of shape embeddings plus its fingerprint.
 * Value semantics; cheap to move, deliberately not copied around by the
 * consumers (they take `const ShapeIndex &` or a pointer).
 */
class ShapeIndex
{
  public:
    /** An empty index (size 0, fingerprint of the empty population). */
    ShapeIndex() = default;

    /**
     * Embed one population: `rows[i]` points at instance i's samples
     * (all rows share `samples`).  Deterministic for fixed inputs; see
     * shapePoints for the embedding itself.
     */
    static ShapeIndex build(const std::vector<const double *> &rows,
                            std::size_t samples,
                            std::size_t buckets = kDefaultShapeBuckets);

    /**
     * Wrap an already-computed embedding (tests, or callers that
     * produced the points through shapePoints themselves).  The
     * fingerprint is recomputed from the arguments, so equality with a
     * built index holds whenever the values match.
     */
    static ShapeIndex fromPoints(std::vector<Point> points,
                                 std::size_t samples, std::size_t buckets);

    /** Number of embedded instances. */
    std::size_t size() const { return points_.size(); }

    bool empty() const { return points_.empty(); }

    /** Bucket count the index was built with (the requested one; the
     *  actual point dimension is min(buckets, samples)). */
    std::size_t buckets() const { return buckets_; }

    /** Samples per trace of the embedded population. */
    std::size_t samples() const { return samples_; }

    /** Embedding dimension of every point. */
    std::size_t dimensions() const
    {
        return points_.empty() ? 0 : points_.front().size();
    }

    /** All points, in population order. */
    const std::vector<Point> &points() const { return points_; }

    /** Point of instance `i` (checked). */
    const Point &point(std::size_t i) const;

    /**
     * Content fingerprint over (samples, buckets, every point's bits).
     * The caching identity of the index: equal fingerprints mean equal
     * embeddings of equal populations.
     */
    std::uint64_t fingerprint() const { return fingerprint_; }

    /**
     * Mean Euclidean distance between this index's points and
     * `other`'s, position-wise over the common prefix — the monitor's
     * shape-drift diagnostic (0.0 when either index is empty).  Order
     * of the two indexes does not matter.
     */
    double meanDriftFrom(const ShapeIndex &other) const;

  private:
    std::vector<Point> points_;
    std::size_t buckets_ = 0;
    std::size_t samples_ = 0;
    std::uint64_t fingerprint_ = 0;
};

} // namespace sosim::cluster

#endif // SOSIM_CLUSTER_SHAPE_INDEX_H
