#ifndef SOSIM_CLUSTER_KMEANS_H
#define SOSIM_CLUSTER_KMEANS_H

/**
 * @file
 * K-means clustering (k-means++ seeding, Lloyd iterations) over points in
 * the asynchrony-score space (section 3.5 of the paper).  A size-balancing
 * post-pass is provided because the paper's placement step assumes "each
 * of these clusters have the same number of instances".
 */

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace sosim::cluster {

/** A point in d-dimensional feature space. */
using Point = std::vector<double>;

/** Squared Euclidean distance between two equal-dimension points. */
double squaredDistance(const Point &a, const Point &b);

/**
 * Squared Euclidean distance over raw spans (the view form used by the
 * hot per-point loops; no size check).
 */
double squaredDistance(const double *a, const double *b, std::size_t dim);

/** Parameters for a k-means run. */
struct KMeansConfig {
    /** Number of clusters; must be >= 1 and <= number of points. */
    std::size_t k = 8;
    /** Upper bound on Lloyd iterations. */
    int maxIterations = 100;
    /** Stop when inertia improves by less than this relative amount. */
    double tolerance = 1e-6;
    /**
     * Independent restarts; the best-inertia run wins (earliest restart
     * on ties).  Each restart draws from its own seed derived up front
     * from `seed`, so restarts are independent of each other and run in
     * parallel with results identical to the serial order.
     */
    int restarts = 3;
    /** RNG seed for seeding and restarts. */
    std::uint64_t seed = 42;
};

/** Result of a k-means run. */
struct KMeansResult {
    /** Cluster index of each input point. */
    std::vector<std::size_t> assignment;
    /** Final centroid positions. */
    std::vector<Point> centroids;
    /** Sum of squared distances of points to their centroid. */
    double inertia = 0.0;
    /** Lloyd iterations performed by the winning restart. */
    int iterations = 0;
};

/**
 * Run k-means over the given points.
 *
 * @param points Input points; all must share one dimensionality.
 * @param config Clustering parameters.
 */
KMeansResult kMeans(const std::vector<Point> &points,
                    const KMeansConfig &config);

/**
 * Rebalance a clustering so every cluster has (near-)equal size.
 *
 * Points are greedily moved from over-full clusters to under-full ones,
 * choosing at each step the move that increases inertia the least.  Sizes
 * after the pass differ by at most one.
 *
 * @param points Input points (same order as the clustering).
 * @param result Clustering to rebalance; assignment is updated in place
 *               and centroids/inertia are recomputed.
 */
void equalizeClusterSizes(const std::vector<Point> &points,
                          KMeansResult &result);

/** Number of points in each cluster of an assignment. */
std::vector<std::size_t> clusterSizes(
    const std::vector<std::size_t> &assignment, std::size_t k);

} // namespace sosim::cluster

#endif // SOSIM_CLUSTER_KMEANS_H
