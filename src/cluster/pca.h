#ifndef SOSIM_CLUSTER_PCA_H
#define SOSIM_CLUSTER_PCA_H

/**
 * @file
 * Principal component analysis by power iteration with deflation.  Used
 * to initialize the t-SNE embedding (Figure 8) and as a cheap linear
 * baseline projection of the asynchrony-score space.
 */

#include <vector>

#include "cluster/kmeans.h"

namespace sosim::cluster {

/** Result of projecting points onto the leading principal components. */
struct PcaResult {
    /** Per-point coordinates in component space (n x d_out). */
    std::vector<Point> projected;
    /** The components themselves (d_out x d_in, unit length). */
    std::vector<Point> components;
    /** Variance captured by each component. */
    std::vector<double> explainedVariance;
};

/**
 * Project points onto their top `components` principal components.
 *
 * @param points     Input points; all must share one dimensionality.
 * @param components Number of leading components (>= 1, <= dimension).
 * @param iterations Power-iteration steps per component.
 */
PcaResult pca(const std::vector<Point> &points, std::size_t components,
              int iterations = 100);

} // namespace sosim::cluster

#endif // SOSIM_CLUSTER_PCA_H
