#ifndef SOSIM_CLUSTER_TSNE_H
#define SOSIM_CLUSTER_TSNE_H

/**
 * @file
 * Exact (O(n^2)) t-SNE (van der Maaten & Hinton, JMLR 2008), used to
 * reproduce Figure 8: the 2-D projection of service instances embedded in
 * the asynchrony-score space.  Exact t-SNE is entirely adequate at the
 * few-thousand-point scale of one datacenter suite.
 */

#include <cstdint>
#include <vector>

#include "cluster/kmeans.h"

namespace sosim::cluster {

/** Parameters of a t-SNE run. */
struct TsneConfig {
    /** Output dimensionality (2 for Figure 8). */
    std::size_t outputDims = 2;
    /** Target perplexity of the input-space Gaussian kernels. */
    double perplexity = 30.0;
    /** Gradient-descent iterations. */
    int iterations = 300;
    /** Learning rate (eta). */
    double learningRate = 100.0;
    /** Early-exaggeration factor applied for the first quarter of steps. */
    double earlyExaggeration = 4.0;
    /** Momentum (switches to 0.8 after the early phase). */
    double initialMomentum = 0.5;
    /** Seed for the PCA-jitter initialization. */
    std::uint64_t seed = 7;
};

/**
 * Embed high-dimensional points into `config.outputDims` dimensions.
 *
 * @param points Input points; all must share one dimensionality.
 * @param config t-SNE parameters; perplexity is clamped to (n-1)/3.
 * @return One low-dimensional point per input point, same order.
 */
std::vector<Point> tsne(const std::vector<Point> &points,
                        const TsneConfig &config = {});

} // namespace sosim::cluster

#endif // SOSIM_CLUSTER_TSNE_H
