#include "tsne.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/pca.h"
#include "util/error.h"
#include "util/rng.h"

namespace sosim::cluster {

namespace {

/**
 * Binary-search the Gaussian bandwidth of row i so the conditional
 * distribution P(j|i) has the requested perplexity, writing the row of
 * conditional probabilities into `row`.
 */
void
perplexityRow(const std::vector<double> &dist2_row, std::size_t i,
              double target_perplexity, std::vector<double> &row)
{
    const std::size_t n = dist2_row.size();
    const double log_target = std::log(target_perplexity);

    double beta = 1.0; // 1 / (2 sigma^2)
    double beta_lo = 0.0;
    double beta_hi = std::numeric_limits<double>::max();

    for (int attempt = 0; attempt < 64; ++attempt) {
        double sum = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            row[j] = (j == i) ? 0.0 : std::exp(-beta * dist2_row[j]);
            sum += row[j];
        }
        if (sum <= 0.0)
            sum = std::numeric_limits<double>::min();

        // Shannon entropy H of the row distribution.
        double h = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            if (row[j] > 0.0) {
                const double p = row[j] / sum;
                h -= p * std::log(p);
            }
        }
        const double diff = h - log_target;
        if (std::abs(diff) < 1e-5)
            break;
        if (diff > 0.0) {
            beta_lo = beta;
            beta = (beta_hi == std::numeric_limits<double>::max())
                ? beta * 2.0
                : (beta + beta_hi) / 2.0;
        } else {
            beta_hi = beta;
            beta = (beta + beta_lo) / 2.0;
        }
    }

    double sum = 0.0;
    for (const auto p : row)
        sum += p;
    if (sum <= 0.0)
        sum = std::numeric_limits<double>::min();
    for (auto &p : row)
        p /= sum;
}

} // namespace

std::vector<Point>
tsne(const std::vector<Point> &points, const TsneConfig &config)
{
    SOSIM_REQUIRE(points.size() >= 4, "tsne: need at least 4 points");
    SOSIM_REQUIRE(config.outputDims >= 1, "tsne: outputDims must be >= 1");
    SOSIM_REQUIRE(config.iterations >= 1, "tsne: iterations must be >= 1");
    const std::size_t n = points.size();
    const std::size_t in_dim = points.front().size();
    for (const auto &p : points)
        SOSIM_REQUIRE(p.size() == in_dim, "tsne: inconsistent dimensions");

    const double perplexity =
        std::min(config.perplexity,
                 std::max(2.0, static_cast<double>(n - 1) / 3.0));

    // Pairwise squared distances in input space.
    std::vector<std::vector<double>> dist2(n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j) {
            const double d = squaredDistance(points[i], points[j]);
            dist2[i][j] = d;
            dist2[j][i] = d;
        }

    // Symmetrized joint probabilities P.
    std::vector<std::vector<double>> p(n, std::vector<double>(n, 0.0));
    {
        std::vector<double> row(n, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            perplexityRow(dist2[i], i, perplexity, row);
            for (std::size_t j = 0; j < n; ++j)
                p[i][j] = row[j];
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j) {
            const double v = (p[i][j] + p[j][i]) /
                             (2.0 * static_cast<double>(n));
            p[i][j] = std::max(v, 1e-12);
            p[j][i] = p[i][j];
        }

    // Initialize the embedding from PCA plus a little jitter so identical
    // points separate.
    const std::size_t out_dim = std::min(config.outputDims, in_dim);
    auto init = pca(points, out_dim);
    util::Rng rng(config.seed);
    std::vector<Point> y(n, Point(config.outputDims, 0.0));
    // Scale PCA coordinates down to t-SNE's customary 1e-4 init scale.
    double max_abs = 1e-12;
    for (const auto &pt : init.projected)
        for (const auto c : pt)
            max_abs = std::max(max_abs, std::abs(c));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t d = 0; d < config.outputDims; ++d) {
            const double base =
                d < out_dim ? init.projected[i][d] / max_abs * 1e-2 : 0.0;
            y[i][d] = base + rng.normal(0.0, 1e-4);
        }

    std::vector<Point> velocity(n, Point(config.outputDims, 0.0));
    std::vector<Point> gradient(n, Point(config.outputDims, 0.0));
    std::vector<std::vector<double>> q_num(n, std::vector<double>(n, 0.0));

    const int exaggeration_end = std::max(1, config.iterations / 4);
    for (int iter = 0; iter < config.iterations; ++iter) {
        const double exaggeration =
            iter < exaggeration_end ? config.earlyExaggeration : 1.0;
        const double momentum =
            iter < exaggeration_end ? config.initialMomentum : 0.8;

        // Student-t numerators and their total.
        double q_total = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = i + 1; j < n; ++j) {
                const double d2 = squaredDistance(y[i], y[j]);
                const double num = 1.0 / (1.0 + d2);
                q_num[i][j] = num;
                q_num[j][i] = num;
                q_total += 2.0 * num;
            }
        q_total = std::max(q_total, 1e-12);

        // Gradient: 4 * sum_j (p_ij - q_ij) * num_ij * (y_i - y_j).
        for (std::size_t i = 0; i < n; ++i) {
            std::fill(gradient[i].begin(), gradient[i].end(), 0.0);
            for (std::size_t j = 0; j < n; ++j) {
                if (j == i)
                    continue;
                const double q_ij =
                    std::max(q_num[i][j] / q_total, 1e-12);
                const double mult =
                    (exaggeration * p[i][j] - q_ij) * q_num[i][j];
                for (std::size_t d = 0; d < config.outputDims; ++d)
                    gradient[i][d] += 4.0 * mult * (y[i][d] - y[j][d]);
            }
        }

        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t d = 0; d < config.outputDims; ++d) {
                velocity[i][d] = momentum * velocity[i][d] -
                                 config.learningRate * gradient[i][d];
                y[i][d] += velocity[i][d];
            }

        // Re-center to keep the embedding from drifting.
        Point mean(config.outputDims, 0.0);
        for (const auto &pt : y)
            for (std::size_t d = 0; d < config.outputDims; ++d)
                mean[d] += pt[d];
        for (auto &m : mean)
            m /= static_cast<double>(n);
        for (auto &pt : y)
            for (std::size_t d = 0; d < config.outputDims; ++d)
                pt[d] -= mean[d];
    }

    return y;
}

} // namespace sosim::cluster
