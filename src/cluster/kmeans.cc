#include "kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/obs.h"
#include "util/error.h"
#include "util/parallel.h"

namespace sosim::cluster {

double
squaredDistance(const double *a, const double *b, std::size_t dim)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

double
squaredDistance(const Point &a, const Point &b)
{
    SOSIM_REQUIRE(a.size() == b.size(),
                  "squaredDistance: dimension mismatch");
    return squaredDistance(a.data(), b.data(), a.size());
}

namespace {

/** k-means++ seeding: spread initial centroids proportionally to D². */
std::vector<Point>
seedPlusPlus(const std::vector<Point> &points, std::size_t k,
             util::Rng &rng)
{
    std::vector<Point> centroids;
    centroids.reserve(k);
    centroids.push_back(
        points[static_cast<std::size_t>(
            rng.uniformInt(0, (std::int64_t)points.size() - 1))]);

    std::vector<double> dist2(points.size(),
                              std::numeric_limits<double>::max());
    while (centroids.size() < k) {
        double total = 0.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            dist2[i] = std::min(dist2[i],
                                squaredDistance(points[i],
                                                centroids.back()));
            total += dist2[i];
        }
        if (total <= 0.0) {
            // All remaining points coincide with a centroid; duplicate.
            centroids.push_back(centroids.back());
            continue;
        }
        double target = rng.uniform(0.0, total);
        std::size_t chosen = points.size() - 1;
        for (std::size_t i = 0; i < points.size(); ++i) {
            target -= dist2[i];
            if (target <= 0.0) {
                chosen = i;
                break;
            }
        }
        centroids.push_back(points[chosen]);
    }
    return centroids;
}

/** One full Lloyd descent from a given seeding. */
KMeansResult
lloyd(const std::vector<Point> &points, std::vector<Point> centroids,
      const KMeansConfig &config)
{
    const std::size_t n = points.size();
    const std::size_t k = centroids.size();
    const std::size_t dim = points.front().size();

    KMeansResult result;
    result.assignment.assign(n, 0);
    std::vector<double> best_dist(n);
    double prev_inertia = std::numeric_limits<double>::max();
#if SOSIM_OBS_ENABLED
    std::vector<std::size_t> prev_assignment(n, k); // k = "unassigned".
#endif

    for (int iter = 0; iter < config.maxIterations; ++iter) {
        SOSIM_COUNT("cluster.kmeans.iterations");
        // Assignment step: each point is independent, so fan the
        // distance loops out; inertia is reduced serially below, in
        // index order, keeping the sum identical for any thread count.
        util::parallelFor(
            n,
            [&](std::size_t i) {
                const double *p = points[i].data();
                double best = std::numeric_limits<double>::max();
                std::size_t best_c = 0;
                for (std::size_t c = 0; c < k; ++c) {
                    const double d =
                        squaredDistance(p, centroids[c].data(), dim);
                    if (d < best) {
                        best = d;
                        best_c = c;
                    }
                }
                result.assignment[i] = best_c;
                best_dist[i] = best;
            },
            /*min_grain=*/64);
        double inertia = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            inertia += best_dist[i];
#if SOSIM_OBS_ENABLED
        {
            std::size_t moved = 0;
            for (std::size_t i = 0; i < n; ++i)
                moved += prev_assignment[i] != result.assignment[i];
            SOSIM_COUNT_ADD("cluster.kmeans.reassignments", moved);
            prev_assignment = result.assignment;
        }
#endif

        // Update step.
        std::vector<Point> sums(k, Point(dim, 0.0));
        std::vector<std::size_t> counts(k, 0);
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t c = result.assignment[i];
            ++counts[c];
            for (std::size_t d = 0; d < dim; ++d)
                sums[c][d] += points[i][d];
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] == 0)
                continue; // Keep the empty cluster's centroid in place.
            for (std::size_t d = 0; d < dim; ++d)
                centroids[c][d] =
                    sums[c][d] / static_cast<double>(counts[c]);
        }

        result.inertia = inertia;
        result.iterations = iter + 1;
        if (prev_inertia - inertia <=
            config.tolerance * std::max(prev_inertia, 1e-300)) {
            break;
        }
        prev_inertia = inertia;
    }

    result.centroids = std::move(centroids);
    return result;
}

} // namespace

KMeansResult
kMeans(const std::vector<Point> &points, const KMeansConfig &config)
{
    SOSIM_SPAN("cluster.kmeans");
    SOSIM_COUNT("cluster.kmeans.runs");
    SOSIM_REQUIRE(!points.empty(), "kMeans: need at least one point");
    SOSIM_REQUIRE(config.k >= 1, "kMeans: k must be >= 1");
    SOSIM_REQUIRE(config.k <= points.size(),
                  "kMeans: k must not exceed the number of points");
    SOSIM_REQUIRE(config.restarts >= 1, "kMeans: restarts must be >= 1");
    const std::size_t dim = points.front().size();
    SOSIM_REQUIRE(dim >= 1, "kMeans: points must have dimension >= 1");
    for (const auto &p : points)
        SOSIM_REQUIRE(p.size() == dim, "kMeans: inconsistent dimensions");

    // Derive every restart's seed up front from one generator, then run
    // the restarts independently (and in parallel); the winner is picked
    // serially in restart order, so ties resolve to the earliest restart
    // exactly as a serial loop would.
    util::Rng rng(config.seed);
    std::vector<std::uint64_t> seeds(
        static_cast<std::size_t>(config.restarts));
    for (auto &s : seeds)
        s = rng.engine()();

    std::vector<KMeansResult> runs(seeds.size());
    util::parallelFor(seeds.size(), [&](std::size_t r) {
        // Nested under cluster.kmeans even from pool workers (the
        // submitting span is adopted inside every chunk).
        SOSIM_SPAN("cluster.kmeans.restart");
        SOSIM_COUNT("cluster.kmeans.restarts");
        util::Rng restart_rng(seeds[r]);
        auto seeded = seedPlusPlus(points, config.k, restart_rng);
        runs[r] = lloyd(points, std::move(seeded), config);
    });

    KMeansResult best;
    best.inertia = std::numeric_limits<double>::max();
    for (auto &run : runs)
        if (run.inertia < best.inertia)
            best = std::move(run);
    return best;
}

std::vector<std::size_t>
clusterSizes(const std::vector<std::size_t> &assignment, std::size_t k)
{
    std::vector<std::size_t> sizes(k, 0);
    for (const auto c : assignment) {
        SOSIM_REQUIRE(c < k, "clusterSizes: assignment index out of range");
        ++sizes[c];
    }
    return sizes;
}

void
equalizeClusterSizes(const std::vector<Point> &points, KMeansResult &result)
{
    const std::size_t n = points.size();
    const std::size_t k = result.centroids.size();
    SOSIM_REQUIRE(result.assignment.size() == n,
                  "equalizeClusterSizes: assignment size mismatch");
    if (k <= 1)
        return;

    auto sizes = clusterSizes(result.assignment, k);
    const std::size_t base = n / k;
    const std::size_t extra = n % k; // First `extra` clusters get base+1.

    auto target_of = [&](std::size_t c) { return base + (c < extra); };

    // Greedily drain over-full clusters into under-full ones, moving the
    // point whose reassignment costs the least extra inertia.
    for (std::size_t c = 0; c < k; ++c) {
        while (sizes[c] > target_of(c)) {
            double best_cost = std::numeric_limits<double>::max();
            std::size_t best_point = n, best_dst = k;
            for (std::size_t i = 0; i < n; ++i) {
                if (result.assignment[i] != c)
                    continue;
                for (std::size_t dst = 0; dst < k; ++dst) {
                    if (dst == c || sizes[dst] >= target_of(dst))
                        continue;
                    const double cost =
                        squaredDistance(points[i], result.centroids[dst]) -
                        squaredDistance(points[i], result.centroids[c]);
                    if (cost < best_cost) {
                        best_cost = cost;
                        best_point = i;
                        best_dst = dst;
                    }
                }
            }
            SOSIM_ASSERT(best_point < n,
                         "equalizeClusterSizes: no destination found");
            result.assignment[best_point] = best_dst;
            --sizes[c];
            ++sizes[best_dst];
        }
    }

    // Recompute centroids and inertia for the balanced assignment.
    const std::size_t dim = points.front().size();
    std::vector<Point> sums(k, Point(dim, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t c = result.assignment[i];
        ++counts[c];
        for (std::size_t d = 0; d < dim; ++d)
            sums[c][d] += points[i][d];
    }
    for (std::size_t c = 0; c < k; ++c) {
        if (counts[c] == 0)
            continue;
        for (std::size_t d = 0; d < dim; ++d)
            result.centroids[c][d] =
                sums[c][d] / static_cast<double>(counts[c]);
    }
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        inertia += squaredDistance(points[i],
                                   result.centroids[result.assignment[i]]);
    result.inertia = inertia;
}

} // namespace sosim::cluster
